(* Kernel description language: a small, explicitly scoped OpenMP-flavoured
   AST that the lowering turns into IR, playing the role of Clang's OpenMP
   codegen. The same kernel can be lowered for the OpenMP runtimes (new or
   old ABI) or directly in CUDA style. *)

type ety = TInt | TFloat

(* element types of memory accesses *)
type mty = MF64 | MI64 | MI32

let ety_of_mty = function MF64 -> TFloat | MI64 | MI32 -> TInt

let size_of_mty = function MF64 | MI64 -> 8 | MI32 -> 4

type cmpop = CEq | CNe | CLt | CLe | CGt | CGe

type expr =
  | Int of int
  | Float of float
  | P of string                    (* parameter / let / local / loop variable *)
  | Add of expr * expr
  | Sub of expr * expr
  | Mul of expr * expr
  | Div of expr * expr
  | Rem of expr * expr             (* int only *)
  | Band of expr * expr            (* int only *)
  | Bxor of expr * expr            (* int only *)
  | Shl of expr * expr             (* int only *)
  | Shr of expr * expr             (* int only *)
  | Min of expr * expr
  | Max of expr * expr
  | Neg of expr
  | Sqrt of expr
  | Expf of expr
  | Logf of expr
  | Sinf of expr
  | Cosf of expr
  | Fabs of expr
  | ToFloat of expr
  | ToInt of expr
  | Cmp of cmpop * expr * expr     (* int result 0/1 *)
  | And of expr * expr             (* logical, non-short-circuit *)
  | Or of expr * expr
  | Not of expr
  | Select of expr * expr * expr
  | Ld of expr * expr * mty        (* load base[idx] *)
  | OmpThreadNum
  | OmpNumThreads
  | OmpLevel
  | OmpTeamNum
  | OmpNumTeams

type stmt =
  | Let of string * expr                  (* immutable SSA binding *)
  | Local of string * ety * expr option   (* mutable scalar variable *)
  | LocalArr of string * mty * int        (* mutable array; P name = base pointer *)
  | Set of string * expr                  (* assign to a Local *)
  | Store of expr * expr * mty * expr     (* base[idx] <- value *)
  | AtomicAdd of expr * expr * mty * expr (* base[idx] atomically += value *)
  | If of expr * stmt list * stmt list
  | For of string * expr * expr * stmt list  (* sequential: var in [lo, hi) *)
  | While of expr * stmt list
  | Ws_for of string * expr * stmt list   (* work-shared loop within a parallel *)
  | Parallel of int option * stmt list    (* fork: num_threads (None = default) *)
  | Nested_parallel of stmt list          (* parallel inside a parallel: serialized *)
  | Assert of expr
  | Trace of string * expr list

(* Top-level target construct of a kernel. *)
type construct =
  | Distribute_parallel_for of string * expr * stmt list
      (* combined `target teams distribute parallel for`: var, trip count, body *)
  | Generic of stmt list
      (* `target`: sequential main-thread code containing Parallel stmts *)
  | Spmd of stmt list
      (* `target parallel`: all threads execute the body (may use Ws_for) *)

type kernel = {
  k_name : string;
  k_params : (string * ety) list;
  k_construct : construct;
}

(* ------------------------------------------------------------------ *)
(* Free variables of statements (for outlining captures).             *)
(* ------------------------------------------------------------------ *)

module SSet = Set.Make (String)

let rec expr_vars = function
  | Int _ | Float _ | OmpThreadNum | OmpNumThreads | OmpLevel | OmpTeamNum
  | OmpNumTeams -> SSet.empty
  | P n -> SSet.singleton n
  | Neg e | Sqrt e | Expf e | Logf e | Sinf e | Cosf e | Fabs e | ToFloat e | ToInt e
  | Not e -> expr_vars e
  | Add (a, b) | Sub (a, b) | Mul (a, b) | Div (a, b) | Rem (a, b) | Band (a, b)
  | Bxor (a, b) | Shl (a, b) | Shr (a, b) | Min (a, b) | Max (a, b)
  | Cmp (_, a, b) | And (a, b) | Or (a, b) ->
    SSet.union (expr_vars a) (expr_vars b)
  | Select (a, b, c) -> SSet.union (expr_vars a) (SSet.union (expr_vars b) (expr_vars c))
  | Ld (a, b, _) -> SSet.union (expr_vars a) (expr_vars b)

(* free variables of a statement sequence: used minus locally bound *)
let free_vars (stmts : stmt list) : SSet.t =
  let rec go_stmts bound acc stmts =
    List.fold_left (fun (bound, acc) s -> go_stmt bound acc s) (bound, acc) stmts
  and use bound acc e = SSet.union acc (SSet.diff (expr_vars e) bound)
  and go_stmt bound acc = function
    | Let (n, e) -> (SSet.add n bound, use bound acc e)
    | Local (n, _, init) ->
      let acc = match init with Some e -> use bound acc e | None -> acc in
      (SSet.add n bound, acc)
    | LocalArr (n, _, _) -> (SSet.add n bound, acc)
    | Set (n, e) ->
      let acc = use bound acc e in
      (bound, if SSet.mem n bound then acc else SSet.add n acc)
    | Store (b, i, _, v) -> (bound, use bound (use bound (use bound acc b) i) v)
    | AtomicAdd (b, i, _, v) -> (bound, use bound (use bound (use bound acc b) i) v)
    | If (c, t, f) ->
      let acc = use bound acc c in
      let _, acc = go_stmts bound acc t in
      let _, acc = go_stmts bound acc f in
      (bound, acc)
    | For (v, lo, hi, body) ->
      let acc = use bound (use bound acc lo) hi in
      let _, acc = go_stmts (SSet.add v bound) acc body in
      (bound, acc)
    | While (c, body) ->
      let acc = use bound acc c in
      let _, acc = go_stmts bound acc body in
      (bound, acc)
    | Ws_for (v, n, body) ->
      let acc = use bound acc n in
      let _, acc = go_stmts (SSet.add v bound) acc body in
      (bound, acc)
    | Parallel (_, body) | Nested_parallel body ->
      let _, acc = go_stmts bound acc body in
      (bound, acc)
    | Assert e -> (bound, use bound acc e)
    | Trace (_, es) -> (bound, List.fold_left (use bound) acc es)
  in
  snd (go_stmts SSet.empty SSet.empty stmts)

(* All Local/LocalArr declarations in a function-level body (for hoisting
   allocations to the function entry). Does not descend into Parallel or
   Ws_for bodies: those are outlined into their own functions. *)
let rec local_decls (stmts : stmt list) : (string * [ `Scalar of ety | `Arr of mty * int ]) list =
  List.concat_map
    (function
      | Local (n, t, _) -> [ (n, `Scalar t) ]
      | LocalArr (n, t, k) -> [ (n, `Arr (t, k)) ]
      | If (_, t, f) -> local_decls t @ local_decls f
      | For (_, _, _, b) | While (_, b) -> local_decls b
      | Nested_parallel b -> local_decls b
      | Let _ | Set _ | Store _ | AtomicAdd _ | Assert _ | Trace _ | Ws_for _
      | Parallel _ -> [])
    stmts
