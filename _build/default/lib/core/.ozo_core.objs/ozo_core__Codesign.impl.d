lib/core/codesign.ml: Fmt List Ozo_frontend Ozo_ir Ozo_opt Ozo_runtime Ozo_vgpu
