(* XSBench proxy: the memory-bound continuous-energy macroscopic neutron
   cross-section lookup of OpenMC. Per lookup: binary search on the
   unionized energy grid, then for every nuclide an indexed gather into
   its per-nuclide grid and linear interpolation of five cross sections,
   accumulated into the macroscopic result. The accesses into the nuclide
   grids are data-dependent (energy-driven), which is what makes the real
   XSBench memory bound.

   As in the paper's setup, the reduction over lookups stays outside the
   timed kernel: each lookup writes its own five-component result. *)

open Ozo_frontend.Ast

type params = {
  n_nuclides : int;
  n_gridpoints : int; (* per nuclide *)
  lookups : int;
  teams : int;
  threads : int;
  seed : int;
}

let default = { n_nuclides = 16; n_gridpoints = 128; lookups = 2048; teams = 8; threads = 64; seed = 42 }

let small = { default with n_nuclides = 4; n_gridpoints = 16; lookups = 64; teams = 2; threads = 32 }

type data = {
  egrid : float array;          (* unionized energies, sorted, size u *)
  index_grid : int array;       (* u * nn: per-nuclide grid index *)
  ngrid_e : float array;        (* nn * g nuclide energies *)
  ngrid_xs : float array;       (* nn * g * 5 cross sections *)
  lookup_e : float array;       (* lookup energies *)
}

let generate (p : params) : data =
  let rng = Prng.create p.seed in
  let nn = p.n_nuclides and g = p.n_gridpoints in
  let u = nn * g in
  let egrid = Array.init u (fun _ -> Prng.float rng) in
  Array.sort compare egrid;
  (* nuclide grids: sorted energies covering [0,1] *)
  let ngrid_e = Array.make (nn * g) 0.0 in
  for j = 0 to nn - 1 do
    let es = Array.init g (fun _ -> Prng.float rng) in
    Array.sort compare es;
    es.(0) <- 0.0;
    es.(g - 1) <- 1.0;
    Array.blit es 0 ngrid_e (j * g) g
  done;
  let ngrid_xs = Array.init (nn * g * 5) (fun _ -> Prng.float_range rng 0.1 1.0) in
  (* index grid: for each unionized point and nuclide, the last nuclide
     grid point with energy <= egrid value (capped so idx+1 is valid) *)
  let index_grid = Array.make (u * nn) 0 in
  for ui = 0 to u - 1 do
    for j = 0 to nn - 1 do
      let e = egrid.(ui) in
      let idx = ref 0 in
      for k = 0 to g - 2 do
        if ngrid_e.((j * g) + k) <= e then idx := k
      done;
      index_grid.((ui * nn) + j) <- min !idx (g - 2)
    done
  done;
  let lookup_e = Array.init p.lookups (fun _ -> Prng.float_range rng 0.001 0.999) in
  { egrid; index_grid; ngrid_e; ngrid_xs; lookup_e }

(* host reference: mirrors the kernel arithmetic exactly *)
let reference (p : params) (d : data) : float array =
  let nn = p.n_nuclides and g = p.n_gridpoints in
  let u = nn * g in
  let out = Array.make (p.lookups * 5) 0.0 in
  for i = 0 to p.lookups - 1 do
    let e = d.lookup_e.(i) in
    (* binary search *)
    let lo = ref 0 and hi = ref (u - 1) in
    while !hi - !lo > 1 do
      let mid = (!lo + !hi) / 2 in
      if d.egrid.(mid) <= e then lo := mid else hi := mid
    done;
    let m = Array.make 5 0.0 in
    for j = 0 to nn - 1 do
      let idx = d.index_grid.((!lo * nn) + j) in
      let base = (j * g) + idx in
      let e0 = d.ngrid_e.(base) and e1 = d.ngrid_e.(base + 1) in
      let f = (e -. e0) /. (e1 -. e0) in
      for k = 0 to 4 do
        let x0 = d.ngrid_xs.((base * 5) + k) and x1 = d.ngrid_xs.(((base + 1) * 5) + k) in
        m.(k) <- m.(k) +. (x0 +. (f *. (x1 -. x0)))
      done
    done;
    for k = 0 to 4 do
      out.((i * 5) + k) <- m.(k)
    done
  done;
  out

(* kernel body shared by the OpenMP and CUDA forms *)
let body (p : params) : stmt list =
  let nn = p.n_nuclides and g = p.n_gridpoints in
  let u = nn * g in
  [ Let ("e", Ld (P "lookup_e", P "i", MF64));
    Local ("lo", TInt, Some (Int 0));
    Local ("hi", TInt, Some (Int (u - 1)));
    While
      ( Cmp (CGt, Sub (P "hi", P "lo"), Int 1),
        [ Let ("mid", Div (Add (P "lo", P "hi"), Int 2));
          If
            ( Cmp (CLe, Ld (P "egrid", P "mid", MF64), P "e"),
              [ Set ("lo", P "mid") ],
              [ Set ("hi", P "mid") ] )
        ] );
    Local ("m0", TFloat, Some (Float 0.0));
    Local ("m1", TFloat, Some (Float 0.0));
    Local ("m2", TFloat, Some (Float 0.0));
    Local ("m3", TFloat, Some (Float 0.0));
    Local ("m4", TFloat, Some (Float 0.0));
    For
      ( "j",
        Int 0,
        Int nn,
        Let ("idx", Ld (P "index_grid", Add (Mul (P "lo", Int nn), P "j"), MI64))
        :: Let ("base", Add (Mul (P "j", Int g), P "idx"))
        :: Let ("e0", Ld (P "ngrid_e", P "base", MF64))
        :: Let ("e1", Ld (P "ngrid_e", Add (P "base", Int 1), MF64))
        :: Let ("f", Div (Sub (P "e", P "e0"), Sub (P "e1", P "e0")))
        :: List.concat_map
             (fun k ->
               [ Let
                   ( Printf.sprintf "x0_%d" k,
                     Ld (P "ngrid_xs", Add (Mul (P "base", Int 5), Int k), MF64) );
                 Let
                   ( Printf.sprintf "x1_%d" k,
                     Ld
                       ( P "ngrid_xs",
                         Add (Mul (Add (P "base", Int 1), Int 5), Int k),
                         MF64 ) );
                 Set
                   ( Printf.sprintf "m%d" k,
                     Add
                       ( P (Printf.sprintf "m%d" k),
                         Add
                           ( P (Printf.sprintf "x0_%d" k),
                             Mul
                               ( P "f",
                                 Sub
                                   ( P (Printf.sprintf "x1_%d" k),
                                     P (Printf.sprintf "x0_%d" k) ) ) ) ) )
               ])
             [ 0; 1; 2; 3; 4 ] )
  ]
  @ List.map
      (fun k ->
        Store (P "out", Add (Mul (P "i", Int 5), Int k), MF64, P (Printf.sprintf "m%d" k)))
      [ 0; 1; 2; 3; 4 ]

let kernel (p : params) : kernel =
  { k_name = "xs_lookup_kernel";
    k_params =
      [ ("egrid", TInt); ("index_grid", TInt); ("ngrid_e", TInt); ("ngrid_xs", TInt);
        ("lookup_e", TInt); ("out", TInt); ("n_lookups", TInt) ];
    k_construct = Distribute_parallel_for ("i", P "n_lookups", body p) }

let problem ?(params = default) () : Proxy.t =
  let p = params in
  let d = generate p in
  let expected = reference p d in
  let k = kernel p in
  { p_name = "xsbench";
    p_descr = "memory-bound macroscopic cross-section lookup (OpenMC proxy)";
    p_kernel_omp = k;
    p_kernel_cuda = k;
    (* one-thread-per-element launch: covers the iteration space so the
       oversubscription assumptions hold, like the CUDA originals *)
    p_teams = max p.teams ((p.lookups + p.threads - 1) / p.threads);
    p_threads = p.threads;
    (* ~5 flops per xs channel per nuclide per lookup *)
    p_assume = Proxy.Assume_both;
    p_flops = float_of_int (p.lookups * p.n_nuclides * 5 * 5);
    p_setup =
      (fun dev ->
        let egrid = Proxy.alloc_f64 dev d.egrid in
        let index_grid = Proxy.alloc_i64 dev d.index_grid in
        let ngrid_e = Proxy.alloc_f64 dev d.ngrid_e in
        let ngrid_xs = Proxy.alloc_f64 dev d.ngrid_xs in
        let lookup_e = Proxy.alloc_f64 dev d.lookup_e in
        let out = Ozo_vgpu.Device.alloc dev (p.lookups * 5 * 8) in
        { Proxy.i_args =
            [ Ozo_vgpu.Engine.Ai (Ozo_vgpu.Device.ptr egrid);
              Ai (Ozo_vgpu.Device.ptr index_grid); Ai (Ozo_vgpu.Device.ptr ngrid_e);
              Ai (Ozo_vgpu.Device.ptr ngrid_xs); Ai (Ozo_vgpu.Device.ptr lookup_e);
              Ai (Ozo_vgpu.Device.ptr out); Ai p.lookups ];
          i_check = (fun () -> Proxy.check_f64 ~name:"macro_xs" dev out expected ~tol:1e-9)
        })
  }
