(* GridMini proxy: lattice-QCD style SU(3) matrix × vector product over a
   four-dimensional site lattice (the core of Grid's ax+b benchmarks).
   Per site: a 3x3 complex matrix applied to a complex 3-vector — 66
   flops against 48 doubles of traffic, the balanced kernel for which the
   paper reports GFlops (Fig. 12).

   The loop upper bound is a by-value kernel argument, matching the
   paper's note that GridMini was adjusted to pass the bound by value. *)

open Ozo_frontend.Ast

type params = { lattice : int (* L: sites = L^4 *); teams : int; threads : int; seed : int }

let default = { lattice = 8; teams = 8; threads = 64; seed = 11 }

let small = { default with lattice = 3; teams = 2; threads = 32 }

let sites p = p.lattice * p.lattice * p.lattice * p.lattice

(* Grid uses SoA (structure-of-arrays) layouts so that consecutive
   threads touch consecutive addresses — fully coalesced: element k of the
   matrix lives at mat[k*sites + site]. *)
type data = {
  mat : float array; (* 18 * sites: 3x3 complex, element-major *)
  vec : float array; (* 6 * sites *)
}

let generate (p : params) : data =
  let rng = Prng.create p.seed in
  let s = sites p in
  { mat = Array.init (s * 18) (fun _ -> Prng.float_range rng (-1.0) 1.0);
    vec = Array.init (s * 6) (fun _ -> Prng.float_range rng (-1.0) 1.0) }

let reference (p : params) (d : data) : float array =
  let s = sites p in
  let out = Array.make (s * 6) 0.0 in
  for site = 0 to s - 1 do
    for row = 0 to 2 do
      let zr = ref 0.0 and zi = ref 0.0 in
      for col = 0 to 2 do
        let me = ((row * 3) + col) * 2 in
        let mr = d.mat.((me * s) + site) and mi = d.mat.(((me + 1) * s) + site) in
        let vr = d.vec.((col * 2 * s) + site) and vi = d.vec.((((col * 2) + 1) * s) + site) in
        zr := !zr +. ((mr *. vr) -. (mi *. vi));
        zi := !zi +. ((mr *. vi) +. (mi *. vr))
      done;
      out.((row * 2 * s) + site) <- !zr;
      out.((((row * 2) + 1) * s) + site) <- !zi
    done
  done;
  out

(* element e of an SoA field f at the current site *)
let soa f e = Ld (P f, Add (Mul (Int e, P "n_sites"), P "site"), MF64)

let body : stmt list =
  List.concat_map
    (fun row ->
      [ Local (Printf.sprintf "zr%d" row, TFloat, Some (Float 0.0));
        Local (Printf.sprintf "zi%d" row, TFloat, Some (Float 0.0)) ]
      @ List.concat_map
          (fun col ->
            let me = ((row * 3) + col) * 2 in
            let zr = Printf.sprintf "zr%d" row and zi = Printf.sprintf "zi%d" row in
            [ Let (Printf.sprintf "mr%d%d" row col, soa "mat" me);
              Let (Printf.sprintf "mi%d%d" row col, soa "mat" (me + 1));
              Let (Printf.sprintf "vr%d%d" row col, soa "vec" (col * 2));
              Let (Printf.sprintf "vi%d%d" row col, soa "vec" ((col * 2) + 1));
              Set
                ( zr,
                  Add
                    ( P zr,
                      Sub
                        ( Mul (P (Printf.sprintf "mr%d%d" row col), P (Printf.sprintf "vr%d%d" row col)),
                          Mul (P (Printf.sprintf "mi%d%d" row col), P (Printf.sprintf "vi%d%d" row col)) ) ) );
              Set
                ( zi,
                  Add
                    ( P zi,
                      Add
                        ( Mul (P (Printf.sprintf "mr%d%d" row col), P (Printf.sprintf "vi%d%d" row col)),
                          Mul (P (Printf.sprintf "mi%d%d" row col), P (Printf.sprintf "vr%d%d" row col)) ) ) )
            ])
          [ 0; 1; 2 ]
      @ [ Store (P "out", Add (Mul (Int (row * 2), P "n_sites"), P "site"), MF64,
                 P (Printf.sprintf "zr%d" row));
          Store (P "out", Add (Mul (Int ((row * 2) + 1), P "n_sites"), P "site"), MF64,
                 P (Printf.sprintf "zi%d" row)) ])
    [ 0; 1; 2 ]

let kernel : kernel =
  { k_name = "su3_mv_kernel";
    k_params = [ ("mat", TInt); ("vec", TInt); ("out", TInt); ("n_sites", TInt) ];
    k_construct = Distribute_parallel_for ("site", P "n_sites", body) }

(* flops per site of a complex 3x3 * 3 MV: 9 cmul (6 flops) + 6 cadd
   (2 flops each per component pair => 9*2 adds into accumulators) *)
let flops_per_site = 66.0

let problem ?(params = default) () : Proxy.t =
  let p = params in
  let d = generate p in
  let expected = reference p d in
  let s = sites p in
  { p_name = "gridmini";
    p_descr = "lattice-QCD SU(3) matrix-vector product over a 4-D lattice (Grid proxy)";
    p_kernel_omp = kernel;
    p_kernel_cuda = kernel;
    (* one-thread-per-element launch: covers the iteration space so the
       oversubscription assumptions hold, like the CUDA originals *)
    p_teams = max p.teams ((sites p + p.threads - 1) / p.threads);
    p_threads = p.threads;
    p_assume = Proxy.Assume_both;
    p_flops = flops_per_site *. float_of_int s;
    p_setup =
      (fun dev ->
        let mat = Proxy.alloc_f64 dev d.mat in
        let vec = Proxy.alloc_f64 dev d.vec in
        let out = Ozo_vgpu.Device.alloc dev (s * 6 * 8) in
        { Proxy.i_args =
            [ Ozo_vgpu.Engine.Ai (Ozo_vgpu.Device.ptr mat);
              Ai (Ozo_vgpu.Device.ptr vec); Ai (Ozo_vgpu.Device.ptr out); Ai s ];
          i_check = (fun () -> Proxy.check_f64 ~name:"su3_out" dev out expected ~tol:1e-9)
        })
  }
