(* MiniFMM proxy: fast-multipole-method dual-tree traversal (University of
   Bristol proxy, a dynamic-task-parallelism stress test).

   Per target cell: a far-field (M2L-like) accumulation over the cell's
   interaction list, then a near-field P2P evaluation among the cell's own
   particles.

   The OpenMP form deliberately mirrors MiniFMM's nested parallelism: the
   kernel is a generic `target` region whose main thread forks a parallel
   work-shared traversal, and the near-field phase sits in a *nested*
   parallel region. The nested region is serialized on the GPU but forces
   the runtime to materialize per-thread ICV states through the
   shared-memory stack (paper Fig. 3/4) — this is why MiniFMM cannot
   reach full CUDA parity in the paper (≈0.5x) while the others can.

   The CUDA form is a flat grid-stride kernel over cells (the hand-ported
   structure), so the two differ structurally, as in the real suite. *)

open Ozo_frontend.Ast

type params = {
  cells : int;
  ilist_len : int;       (* interaction-list entries per cell *)
  multipoles : int;      (* coefficients per cell *)
  particles : int;       (* particles per leaf cell *)
  teams : int;
  threads : int;
  seed : int;
}

let default =
  { cells = 512; ilist_len = 8; multipoles = 4; particles = 4; teams = 8; threads = 64;
    seed = 13 }

let small =
  { default with cells = 32; ilist_len = 4; multipoles = 2; particles = 2; teams = 2;
    threads = 32 }

type data = {
  centers : float array; (* cells * 2 *)
  mp : float array;      (* cells * multipoles *)
  ilist : int array;     (* cells * ilist_len (source cell ids) *)
  px : float array;      (* cells * particles * 2 positions *)
}

let generate (p : params) : data =
  let rng = Prng.create p.seed in
  { centers = Array.init (p.cells * 2) (fun _ -> Prng.float_range rng 0.0 100.0);
    mp = Array.init (p.cells * p.multipoles) (fun _ -> Prng.float_range rng (-1.0) 1.0);
    ilist =
      Array.init (p.cells * p.ilist_len) (fun i ->
          let c = i / p.ilist_len in
          let s = Prng.int rng (p.cells - 1) in
          if s >= c then s + 1 else s);
    px = Array.init (p.cells * p.particles * 2) (fun _ -> Prng.float_range rng 0.0 100.0)
  }

let reference (p : params) (d : data) : float array =
  let out = Array.make (p.cells * p.particles) 0.0 in
  for c = 0 to p.cells - 1 do
    (* far field *)
    let acc = ref 0.0 in
    for t = 0 to p.ilist_len - 1 do
      let s = d.ilist.((c * p.ilist_len) + t) in
      let dx = d.centers.(c * 2) -. d.centers.(s * 2) in
      let dy = d.centers.((c * 2) + 1) -. d.centers.((s * 2) + 1) in
      let r = sqrt ((dx *. dx) +. (dy *. dy) +. 1.0) in
      for m = 0 to p.multipoles - 1 do
        acc := !acc +. (d.mp.((s * p.multipoles) + m) /. (r +. float_of_int (m + 1)))
      done
    done;
    (* occasional near-base refinement: the nested-task path *)
    if c mod 8 = 0 then
      for m2 = 0 to p.multipoles - 1 do
        acc := !acc +. (d.mp.((c * p.multipoles) + m2) *. 0.01)
      done;
    (* near field: P2P among the cell's particles *)
    for q = 0 to p.particles - 1 do
      let pot = ref !acc in
      let qx = d.px.(((c * p.particles) + q) * 2) in
      let qy = d.px.((((c * p.particles) + q) * 2) + 1) in
      for o = 0 to p.particles - 1 do
        if o <> q then begin
          let ox = d.px.(((c * p.particles) + o) * 2) in
          let oy = d.px.((((c * p.particles) + o) * 2) + 1) in
          let dx = qx -. ox and dy = qy -. oy in
          pot := !pot +. (1.0 /. sqrt ((dx *. dx) +. (dy *. dy) +. 0.1))
        end
      done;
      out.((c * p.particles) + q) <- !pot
    done
  done;
  out

(* traversal body for one target cell [c]; the near-field part is wrapped
   by the caller (nested parallel for OpenMP, inline for CUDA) *)
let far_field (p : params) : stmt list =
  [ Local ("acc", TFloat, Some (Float 0.0));
    For
      ( "t",
        Int 0,
        Int p.ilist_len,
        [ Let ("s", Ld (P "ilist", Add (Mul (P "c", Int p.ilist_len), P "t"), MI64));
          Let ("dx", Sub (Ld (P "centers", Mul (P "c", Int 2), MF64),
                          Ld (P "centers", Mul (P "s", Int 2), MF64)));
          Let ("dy", Sub (Ld (P "centers", Add (Mul (P "c", Int 2), Int 1), MF64),
                          Ld (P "centers", Add (Mul (P "s", Int 2), Int 1), MF64)));
          Let ("r", Sqrt (Add (Add (Mul (P "dx", P "dx"), Mul (P "dy", P "dy")),
                               Float 1.0)));
          For
            ( "m",
              Int 0,
              Int p.multipoles,
              [ Set
                  ( "acc",
                    Add
                      ( P "acc",
                        Div
                          ( Ld (P "mp", Add (Mul (P "s", Int p.multipoles), P "m"), MF64),
                            Add (P "r", Add (ToFloat (P "m"), Float 1.0)) ) ) )
              ] )
        ] )
  ]

(* the occasionally-taken refinement step; in the OpenMP form it runs in
   a *nested parallel region* (serialized, but forcing the runtime to
   materialize a thread ICV state — paper Fig. 3/4), mirroring MiniFMM's
   dynamic task nesting on a subset of the tree *)
let refinement (p : params) : stmt list =
  [ For
      ( "m2",
        Int 0,
        Int p.multipoles,
        [ Set
            ( "acc",
              Add
                ( P "acc",
                  Mul (Ld (P "mp", Add (Mul (P "c", Int p.multipoles), P "m2"), MF64),
                       Float 0.01) ) )
        ] )
  ]

let near_field (p : params) : stmt list =
  [ For
      ( "q",
        Int 0,
        Int p.particles,
        [ Local ("pot", TFloat, Some (P "acc"));
          Let ("qb", Mul (Add (Mul (P "c", Int p.particles), P "q"), Int 2));
          Let ("qx", Ld (P "px", P "qb", MF64));
          Let ("qy", Ld (P "px", Add (P "qb", Int 1), MF64));
          For
            ( "o",
              Int 0,
              Int p.particles,
              [ If
                  ( Cmp (CNe, P "o", P "q"),
                    [ Let ("ob", Mul (Add (Mul (P "c", Int p.particles), P "o"), Int 2));
                      Let ("ox", Ld (P "px", P "ob", MF64));
                      Let ("oy", Ld (P "px", Add (P "ob", Int 1), MF64));
                      Let ("ddx", Sub (P "qx", P "ox"));
                      Let ("ddy", Sub (P "qy", P "oy"));
                      Set
                        ( "pot",
                          Add
                            ( P "pot",
                              Div
                                ( Float 1.0,
                                  Sqrt
                                    (Add
                                       ( Add (Mul (P "ddx", P "ddx"), Mul (P "ddy", P "ddy")),
                                         Float 0.1 )) ) ) )
                    ],
                    [] )
              ] );
          Store (P "out", Add (Mul (P "c", Int p.particles), P "q"), MF64, P "pot")
        ] )
  ]

let kernel_omp (p : params) : kernel =
  { k_name = "fmm_traversal_kernel";
    k_params =
      [ ("centers", TInt); ("mp", TInt); ("ilist", TInt); ("px", TInt); ("out", TInt);
        ("n_cells", TInt) ];
    k_construct =
      Generic
        [ Parallel
            ( None,
              [ Ws_for
                  ( "c",
                    P "n_cells",
                    far_field p
                    @ [ If
                          ( Cmp (CEq, Rem (P "c", Int 8), Int 0),
                            [ Nested_parallel (refinement p) ],
                            [] )
                      ]
                    @ near_field p )
              ] )
        ] }

let kernel_cuda (p : params) : kernel =
  { k_name = "fmm_traversal_kernel";
    k_params =
      [ ("centers", TInt); ("mp", TInt); ("ilist", TInt); ("px", TInt); ("out", TInt);
        ("n_cells", TInt) ];
    (* the CUDA port launches one block and strides cells across its
       threads (matching the single-team OpenMP traversal) *)
    k_construct =
      Spmd
        [ Ws_for
            ( "c",
              P "n_cells",
              far_field p
              @ [ If (Cmp (CEq, Rem (P "c", Int 8), Int 0), refinement p, []) ]
              @ near_field p )
        ] }

let problem ?(params = default) () : Proxy.t =
  let p = params in
  let d = generate p in
  let expected = reference p d in
  { p_name = "minifmm";
    p_descr = "FMM dual-tree traversal with nested parallelism (Bristol proxy)";
    p_kernel_omp = kernel_omp p;
    p_kernel_cuda = kernel_cuda p;
    (* `target` + `parallel for`: the work-shared loop runs on a single
       team, so the kernel launches one team and iterates more times than
       the team has threads — only the teams-oversubscription promise can
       honestly be made *)
    p_teams = 1;
    p_threads = p.threads;
    p_assume = Proxy.Assume_teams_only;
    p_flops =
      float_of_int
        (p.cells
        * ((p.ilist_len * ((p.multipoles * 4) + 10))
          + (p.particles * p.particles * 10)));
    p_setup =
      (fun dev ->
        let centers = Proxy.alloc_f64 dev d.centers in
        let mp = Proxy.alloc_f64 dev d.mp in
        let ilist = Proxy.alloc_i64 dev d.ilist in
        let px = Proxy.alloc_f64 dev d.px in
        let out = Ozo_vgpu.Device.alloc dev (p.cells * p.particles * 8) in
        { Proxy.i_args =
            [ Ozo_vgpu.Engine.Ai (Ozo_vgpu.Device.ptr centers);
              Ai (Ozo_vgpu.Device.ptr mp); Ai (Ozo_vgpu.Device.ptr ilist);
              Ai (Ozo_vgpu.Device.ptr px); Ai (Ozo_vgpu.Device.ptr out); Ai p.cells ];
          i_check =
            (fun () -> Proxy.check_f64 ~name:"potential" dev out expected ~tol:1e-9) })
  }
