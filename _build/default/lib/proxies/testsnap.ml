(* TestSNAP proxy: the SNAP force kernel of LAMMPS. One thread per atom
   loops over that atom's neighbor list, evaluating a short polynomial
   expansion (standing in for the bispectrum contraction) of the pair
   distance and accumulating a three-component force. Synthetic neighbor
   positions and reference forces, RMS-checked — the same validation
   scheme the real TestSNAP uses. *)

open Ozo_frontend.Ast

type params = {
  atoms : int;
  neighbors : int; (* per atom *)
  coeffs : int;    (* polynomial expansion terms *)
  teams : int;
  threads : int;
  seed : int;
}

let default = { atoms = 1024; neighbors = 26; coeffs = 8; teams = 8; threads = 64; seed = 5 }

let small = { default with atoms = 64; neighbors = 6; coeffs = 4; teams = 2; threads = 32 }

type data = {
  pos : float array;    (* atoms * 3 *)
  neigh : int array;    (* atoms * neighbors, neighbor atom ids *)
  coeff : float array;  (* coeffs *)
}

let generate (p : params) : data =
  let rng = Prng.create p.seed in
  { pos = Array.init (p.atoms * 3) (fun _ -> Prng.float_range rng 0.0 10.0);
    neigh =
      Array.init (p.atoms * p.neighbors) (fun i ->
          (* any atom other than the owner *)
          let a = i / p.neighbors in
          let n = Prng.int rng (p.atoms - 1) in
          if n >= a then n + 1 else n);
    coeff = Array.init p.coeffs (fun _ -> Prng.float_range rng (-0.5) 0.5) }

let reference (p : params) (d : data) : float array =
  let out = Array.make (p.atoms * 3) 0.0 in
  for a = 0 to p.atoms - 1 do
    let fx = ref 0.0 and fy = ref 0.0 and fz = ref 0.0 in
    for j = 0 to p.neighbors - 1 do
      let n = d.neigh.((a * p.neighbors) + j) in
      let dx = d.pos.(a * 3) -. d.pos.(n * 3) in
      let dy = d.pos.((a * 3) + 1) -. d.pos.((n * 3) + 1) in
      let dz = d.pos.((a * 3) + 2) -. d.pos.((n * 3) + 2) in
      let r2 = (dx *. dx) +. (dy *. dy) +. (dz *. dz) +. 1.0 in
      let rinv = 1.0 /. r2 in
      (* short polynomial in 1/r2, the stand-in for the bispectrum sum *)
      let s = ref 0.0 and t = ref rinv in
      for k = 0 to p.coeffs - 1 do
        s := !s +. (d.coeff.(k) *. !t);
        t := !t *. rinv
      done;
      fx := !fx +. (!s *. dx);
      fy := !fy +. (!s *. dy);
      fz := !fz +. (!s *. dz)
    done;
    out.(a * 3) <- !fx;
    out.((a * 3) + 1) <- !fy;
    out.((a * 3) + 2) <- !fz
  done;
  out

let body (p : params) : stmt list =
  [ Local ("fx", TFloat, Some (Float 0.0));
    Local ("fy", TFloat, Some (Float 0.0));
    Local ("fz", TFloat, Some (Float 0.0));
    For
      ( "j",
        Int 0,
        Int p.neighbors,
        [ Let ("n", Ld (P "neigh", Add (Mul (P "a", Int p.neighbors), P "j"), MI64));
          Let ("dx", Sub (Ld (P "pos", Mul (P "a", Int 3), MF64),
                          Ld (P "pos", Mul (P "n", Int 3), MF64)));
          Let ("dy", Sub (Ld (P "pos", Add (Mul (P "a", Int 3), Int 1), MF64),
                          Ld (P "pos", Add (Mul (P "n", Int 3), Int 1), MF64)));
          Let ("dz", Sub (Ld (P "pos", Add (Mul (P "a", Int 3), Int 2), MF64),
                          Ld (P "pos", Add (Mul (P "n", Int 3), Int 2), MF64)));
          Let ("r2",
               Add (Add (Mul (P "dx", P "dx"), Mul (P "dy", P "dy")),
                    Add (Mul (P "dz", P "dz"), Float 1.0)));
          Let ("rinv", Div (Float 1.0, P "r2"));
          Local ("s", TFloat, Some (Float 0.0));
          Local ("t", TFloat, Some (P "rinv"));
          For
            ( "k",
              Int 0,
              Int p.coeffs,
              [ Set ("s", Add (P "s", Mul (Ld (P "coeff", P "k", MF64), P "t")));
                Set ("t", Mul (P "t", P "rinv"))
              ] );
          Set ("fx", Add (P "fx", Mul (P "s", P "dx")));
          Set ("fy", Add (P "fy", Mul (P "s", P "dy")));
          Set ("fz", Add (P "fz", Mul (P "s", P "dz")))
        ] );
    Store (P "out", Mul (P "a", Int 3), MF64, P "fx");
    Store (P "out", Add (Mul (P "a", Int 3), Int 1), MF64, P "fy");
    Store (P "out", Add (Mul (P "a", Int 3), Int 2), MF64, P "fz")
  ]

let kernel (p : params) : kernel =
  { k_name = "snap_force_kernel";
    k_params =
      [ ("pos", TInt); ("neigh", TInt); ("coeff", TInt); ("out", TInt); ("n_atoms", TInt) ];
    k_construct = Distribute_parallel_for ("a", P "n_atoms", body p) }

let problem ?(params = default) () : Proxy.t =
  let p = params in
  let d = generate p in
  let expected = reference p d in
  let k = kernel p in
  { p_name = "testsnap";
    p_descr = "SNAP force calculation (LAMMPS proxy), RMS-checked against reference";
    p_kernel_omp = k;
    p_kernel_cuda = k;
    (* one-thread-per-element launch: covers the iteration space so the
       oversubscription assumptions hold, like the CUDA originals *)
    p_teams = max p.teams ((p.atoms + p.threads - 1) / p.threads);
    p_threads = p.threads;
    p_assume = Proxy.Assume_both;
    p_flops = float_of_int (p.atoms * p.neighbors * ((4 * p.coeffs) + 20));
    p_setup =
      (fun dev ->
        let pos = Proxy.alloc_f64 dev d.pos in
        let neigh = Proxy.alloc_i64 dev d.neigh in
        let coeff = Proxy.alloc_f64 dev d.coeff in
        let out = Ozo_vgpu.Device.alloc dev (p.atoms * 3 * 8) in
        { Proxy.i_args =
            [ Ozo_vgpu.Engine.Ai (Ozo_vgpu.Device.ptr pos);
              Ai (Ozo_vgpu.Device.ptr neigh); Ai (Ozo_vgpu.Device.ptr coeff);
              Ai (Ozo_vgpu.Device.ptr out); Ai p.atoms ];
          i_check =
            (fun () ->
              let rms = Proxy.rms_error dev out expected in
              if rms < 1e-9 then Ok ()
              else Error (Printf.sprintf "force RMS error %.3g exceeds tolerance" rms))
        })
  }
