(* RSBench proxy: the compute-bound multipole cross-section representation
   of OpenMC. Per lookup, every pole of every nuclide contributes a
   rational resonance term plus a Doppler-broadening factor (exp), making
   arithmetic — not memory — the bottleneck, in contrast to XSBench. *)

open Ozo_frontend.Ast

type params = {
  n_nuclides : int;
  n_poles : int; (* per nuclide *)
  lookups : int;
  teams : int;
  threads : int;
  seed : int;
}

let default = { n_nuclides = 12; n_poles = 64; lookups = 384; teams = 8; threads = 64; seed = 7 }

let small = { default with n_nuclides = 2; n_poles = 8; lookups = 64; teams = 2; threads = 32 }

type data = {
  pole_e : float array;  (* nn*np resonance energies *)
  pole_w : float array;  (* nn*np widths *)
  pole_a : float array;  (* nn*np*2 residue (re, im) for sig_t *)
  pole_b : float array;  (* nn*np*2 residue (re, im) for sig_a *)
  lookup_e : float array;
}

let generate (p : params) : data =
  let rng = Prng.create p.seed in
  let n = p.n_nuclides * p.n_poles in
  { pole_e = Array.init n (fun _ -> Prng.float rng);
    pole_w = Array.init n (fun _ -> Prng.float_range rng 0.01 0.1);
    pole_a = Array.init (n * 2) (fun _ -> Prng.float_range rng (-1.0) 1.0);
    pole_b = Array.init (n * 2) (fun _ -> Prng.float_range rng (-1.0) 1.0);
    lookup_e = Array.init p.lookups (fun _ -> Prng.float rng) }

let reference (p : params) (d : data) : float array =
  let out = Array.make (p.lookups * 2) 0.0 in
  let np = p.n_poles in
  for i = 0 to p.lookups - 1 do
    let e = d.lookup_e.(i) in
    let sig_t = ref 0.0 and sig_a = ref 0.0 in
    for j = 0 to p.n_nuclides - 1 do
      for q = 0 to np - 1 do
        let idx = (j * np) + q in
        let dr = e -. d.pole_e.(idx) in
        let w = d.pole_w.(idx) in
        let den = (dr *. dr) +. (w *. w) in
        let dop = exp (-.(dr *. dr) /. (w +. 0.5)) in
        sig_t :=
          !sig_t
          +. (((d.pole_a.(idx * 2) *. dr) +. (d.pole_a.((idx * 2) + 1) *. w)) /. den *. dop);
        sig_a :=
          !sig_a
          +. (((d.pole_b.(idx * 2) *. dr) +. (d.pole_b.((idx * 2) + 1) *. w)) /. den *. dop)
      done
    done;
    out.(i * 2) <- !sig_t;
    out.((i * 2) + 1) <- !sig_a
  done;
  out

let body (p : params) : stmt list =
  let np = p.n_poles in
  [ Let ("e", Ld (P "lookup_e", P "i", MF64));
    Local ("sig_t", TFloat, Some (Float 0.0));
    Local ("sig_a", TFloat, Some (Float 0.0));
    For
      ( "j",
        Int 0,
        Int p.n_nuclides,
        [ For
            ( "q",
              Int 0,
              Int np,
              [ Let ("idx", Add (Mul (P "j", Int np), P "q"));
                Let ("dr", Sub (P "e", Ld (P "pole_e", P "idx", MF64)));
                Let ("w", Ld (P "pole_w", P "idx", MF64));
                Let ("den", Add (Mul (P "dr", P "dr"), Mul (P "w", P "w")));
                Let
                  ( "dop",
                    Expf (Div (Neg (Mul (P "dr", P "dr")), Add (P "w", Float 0.5))) );
                Let ("ar", Ld (P "pole_a", Mul (P "idx", Int 2), MF64));
                Let ("ai", Ld (P "pole_a", Add (Mul (P "idx", Int 2), Int 1), MF64));
                Set
                  ( "sig_t",
                    Add
                      ( P "sig_t",
                        Mul
                          ( Div (Add (Mul (P "ar", P "dr"), Mul (P "ai", P "w")), P "den"),
                            P "dop" ) ) );
                Let ("br", Ld (P "pole_b", Mul (P "idx", Int 2), MF64));
                Let ("bi", Ld (P "pole_b", Add (Mul (P "idx", Int 2), Int 1), MF64));
                Set
                  ( "sig_a",
                    Add
                      ( P "sig_a",
                        Mul
                          ( Div (Add (Mul (P "br", P "dr"), Mul (P "bi", P "w")), P "den"),
                            P "dop" ) ) )
              ] )
        ] );
    Store (P "out", Mul (P "i", Int 2), MF64, P "sig_t");
    Store (P "out", Add (Mul (P "i", Int 2), Int 1), MF64, P "sig_a")
  ]

let kernel (p : params) : kernel =
  { k_name = "rs_lookup_kernel";
    k_params =
      [ ("pole_e", TInt); ("pole_w", TInt); ("pole_a", TInt); ("pole_b", TInt);
        ("lookup_e", TInt); ("out", TInt); ("n_lookups", TInt) ];
    k_construct = Distribute_parallel_for ("i", P "n_lookups", body p) }

let problem ?(params = default) () : Proxy.t =
  let p = params in
  let d = generate p in
  let expected = reference p d in
  let k = kernel p in
  { p_name = "rsbench";
    p_descr = "compute-bound multipole cross-section lookup (OpenMC proxy)";
    p_kernel_omp = k;
    p_kernel_cuda = k;
    (* one-thread-per-element launch: covers the iteration space so the
       oversubscription assumptions hold, like the CUDA originals *)
    p_teams = max p.teams ((p.lookups + p.threads - 1) / p.threads);
    p_threads = p.threads;
    (* ~20 flops per pole per lookup *)
    p_assume = Proxy.Assume_both;
    p_flops = float_of_int (p.lookups * p.n_nuclides * p.n_poles * 20);
    p_setup =
      (fun dev ->
        let pole_e = Proxy.alloc_f64 dev d.pole_e in
        let pole_w = Proxy.alloc_f64 dev d.pole_w in
        let pole_a = Proxy.alloc_f64 dev d.pole_a in
        let pole_b = Proxy.alloc_f64 dev d.pole_b in
        let lookup_e = Proxy.alloc_f64 dev d.lookup_e in
        let out = Ozo_vgpu.Device.alloc dev (p.lookups * 2 * 8) in
        { Proxy.i_args =
            [ Ozo_vgpu.Engine.Ai (Ozo_vgpu.Device.ptr pole_e);
              Ai (Ozo_vgpu.Device.ptr pole_w); Ai (Ozo_vgpu.Device.ptr pole_a);
              Ai (Ozo_vgpu.Device.ptr pole_b); Ai (Ozo_vgpu.Device.ptr lookup_e);
              Ai (Ozo_vgpu.Device.ptr out); Ai p.lookups ];
          i_check = (fun () -> Proxy.check_f64 ~name:"sigma" dev out expected ~tol:1e-9) })
  }
