(* Common interface of the proxy applications. Each proxy provides its
   kernels (the OpenMP form and, when the structures differ as for
   MiniFMM, a separate CUDA form), launch geometry, a device-memory setup
   step and a host-side result check against a reference computed in
   OCaml. *)

module Ast = Ozo_frontend.Ast
module Device = Ozo_vgpu.Device
module Engine = Ozo_vgpu.Engine

type instance = {
  i_args : Engine.arg list;
  i_check : unit -> (unit, string) result; (* validate device results *)
}

(* Which oversubscription flags a user could honestly pass for this
   application (paper Section III-F: the flags are per-application
   promises). [`Teams_only] fits kernels whose work-shared loops iterate
   more times than one team has threads (MiniFMM). *)
type assume_profile = Assume_both | Assume_teams_only

type t = {
  p_name : string;
  p_descr : string;
  p_kernel_omp : Ast.kernel;
  p_kernel_cuda : Ast.kernel;
  p_teams : int;
  p_threads : int;
  p_flops : float; (* nominal useful flops per kernel execution *)
  p_assume : assume_profile;
  p_setup : Device.t -> instance;
}

let kernel_for (p : t) (abi : Ozo_frontend.Lower.abi) =
  match abi with
  | Ozo_frontend.Lower.Cuda -> p.p_kernel_cuda
  | Ozo_frontend.Lower.Omp _ -> p.p_kernel_omp

(* helpers shared by the proxies *)

let alloc_f64 dev (a : float array) =
  let buf = Device.alloc dev (Array.length a * 8) in
  Device.write_f64_array dev buf a;
  buf

let alloc_i64 dev (a : int array) =
  let buf = Device.alloc dev (Array.length a * 8) in
  Device.write_i64_array dev buf a;
  buf

let check_f64 ~name dev buf (expected : float array) ~tol : (unit, string) result =
  let n = Array.length expected in
  let got = Device.read_f64_array dev buf n in
  let bad = ref None in
  Array.iteri
    (fun i e ->
      let g = got.(i) in
      let scale = Float.max 1.0 (Float.abs e) in
      if Float.abs (g -. e) /. scale > tol && !bad = None then bad := Some (i, e, g))
    expected;
  match !bad with
  | None -> Ok ()
  | Some (i, e, g) ->
    Error (Printf.sprintf "%s[%d]: expected %.12g, got %.12g" name i e g)

let rms_error dev buf (expected : float array) =
  let n = Array.length expected in
  let got = Device.read_f64_array dev buf n in
  let acc = ref 0.0 in
  Array.iteri (fun i e -> acc := !acc +. ((got.(i) -. e) ** 2.0)) expected;
  sqrt (!acc /. float_of_int n)
