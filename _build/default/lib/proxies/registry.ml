(* All proxy applications, at evaluation size and at a reduced test size. *)

let all () : Proxy.t list =
  [ Xsbench.problem (); Rsbench.problem (); Gridmini.problem (); Testsnap.problem ();
    Minifmm.problem () ]

let all_small () : Proxy.t list =
  [ Xsbench.problem ~params:Xsbench.small ();
    Rsbench.problem ~params:Rsbench.small ();
    Gridmini.problem ~params:Gridmini.small ();
    Testsnap.problem ~params:Testsnap.small ();
    Minifmm.problem ~params:Minifmm.small () ]

let find name = List.find_opt (fun p -> p.Proxy.p_name = name) (all ())

let find_exn name =
  match find name with
  | Some p -> p
  | None -> invalid_arg ("unknown proxy: " ^ name)
