lib/proxies/testsnap.ml: Array Ozo_frontend Ozo_vgpu Printf Prng Proxy
