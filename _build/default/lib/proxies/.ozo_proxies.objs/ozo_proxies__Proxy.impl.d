lib/proxies/proxy.ml: Array Float Ozo_frontend Ozo_vgpu Printf
