lib/proxies/rsbench.ml: Array Ozo_frontend Ozo_vgpu Prng Proxy
