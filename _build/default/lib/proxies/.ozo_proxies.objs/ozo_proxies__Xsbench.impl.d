lib/proxies/xsbench.ml: Array List Ozo_frontend Ozo_vgpu Printf Prng Proxy
