lib/proxies/registry.ml: Gridmini List Minifmm Proxy Rsbench Testsnap Xsbench
