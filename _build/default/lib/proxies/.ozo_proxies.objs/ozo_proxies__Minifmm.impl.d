lib/proxies/minifmm.ml: Array Ozo_frontend Ozo_vgpu Prng Proxy
