lib/proxies/prng.ml: Int64
