lib/harness/report.ml: Experiments Float Fmt List Ozo_vgpu String
