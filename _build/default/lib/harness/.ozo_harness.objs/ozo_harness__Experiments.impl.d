lib/harness/experiments.ml: Fmt List Ozo_core Ozo_opt Ozo_proxies Ozo_vgpu
