(* The evaluation harness: compiles each proxy under each build
   configuration, runs it on the virtual GPU, validates the results
   against the host reference, and returns the measurements from which
   every figure and table of the paper's Section V is regenerated.

   Build rows follow Fig. 10/11: Old RT (Nightly), New RT (Nightly),
   New RT - w/o Assumptions, New RT, CUDA (NVCC). "New RT" uses the
   oversubscription flags the application can honestly pass
   (Proxy.assume_profile). *)

module C = Ozo_core.Codesign
module Proxy = Ozo_proxies.Proxy
module Pipeline = Ozo_opt.Pipeline

type measurement = {
  r_proxy : string;
  r_build : string;
  r_cycles : float;      (* occupancy-adjusted kernel time, simulated cycles *)
  r_regs : int;
  r_smem : int;
  r_occupancy : float;
  r_counters : Ozo_vgpu.Counters.t;
  r_check : (unit, string) result;
  r_flops : float;
}

exception Harness_error of string

(* the "New RT" row honoring the proxy's honest assumption set *)
let new_rt_for (p : Proxy.t) =
  match p.Proxy.p_assume with
  | Proxy.Assume_both -> C.new_rt
  | Proxy.Assume_teams_only -> C.new_rt_teams_only

let builds_for (p : Proxy.t) : C.build list =
  [ C.old_rt_nightly; C.new_rt_nightly; C.new_rt_no_assumptions; new_rt_for p; C.cuda ]

let measure ?(check_assumes = false) (p : Proxy.t) (b : C.build) : measurement =
  let k = Proxy.kernel_for p b.C.b_abi in
  let c = C.compile b k in
  let dev = C.device c in
  let inst = p.Proxy.p_setup dev in
  match
    C.launch ~check_assumes c dev ~teams:p.Proxy.p_teams ~threads:p.Proxy.p_threads
      inst.Proxy.i_args
  with
  | Error e ->
    raise
      (Harness_error
         (Fmt.str "%s under %s: %a" p.Proxy.p_name b.C.b_label Ozo_vgpu.Device.pp_error e))
  | Ok m ->
    { r_proxy = p.Proxy.p_name; r_build = b.C.b_label;
      r_cycles = m.C.m_kernel_cycles; r_regs = m.C.m_regs; r_smem = m.C.m_smem;
      r_occupancy = m.C.m_occupancy; r_counters = m.C.m_counters;
      r_check = inst.Proxy.i_check (); r_flops = p.Proxy.p_flops }

(* Figure 10 (a-d) + the TestSNAP column: relative performance of every
   build, normalized to Old RT (Nightly) — the paper's baseline. *)
let fig10 (p : Proxy.t) : measurement list = List.map (measure p) (builds_for p)

(* Figure 11: kernel time / registers / shared memory per build. Same
   measurements as fig10; kept separate for reporting. *)
let fig11 = fig10

(* Figure 12: GridMini GFlops across builds (flops per simulated kernel
   cycle, scaled — absolute units are arbitrary in simulation). *)
let fig12 () : measurement list = fig10 (Ozo_proxies.Registry.find_exn "gridmini")

(* Figure 13 + Section V-C: disable one co-designed optimization at a
   time. Returns (feature name, measurement) with the full build first. *)
let ablation (p : Proxy.t) : (string * measurement) list =
  let full = new_rt_for p in
  ("full", measure p full)
  :: List.map
       (fun f -> (Pipeline.feature_name f, measure p (C.without f full)))
       [ Pipeline.B1; Pipeline.B2; Pipeline.B3; Pipeline.B4; Pipeline.C; Pipeline.D ]

(* debug-mode validation run: every assumption checked at runtime *)
let debug_run (p : Proxy.t) : measurement =
  measure ~check_assumes:true p (C.with_debug (new_rt_for p))

let find_proxy name =
  match Ozo_proxies.Registry.find name with
  | Some p -> p
  | None -> raise (Harness_error ("unknown proxy " ^ name))
