(* Module linking: the paper's compilation model links the device runtime
   into the application as a bitcode library *before* optimization, so the
   optimizer sees runtime and application code together. [link] merges two
   modules; declarations (external symbols without bodies are not modelled
   — every function has a body) collide by name, which is an error unless
   the definitions are identical. *)

open Types

let link ?(name = "linked") (a : modul) (b : modul) : modul =
  let globals =
    List.fold_left
      (fun acc g ->
        match List.find_opt (fun g' -> g'.g_name = g.g_name) acc with
        | Some g' when equal_global g g' -> acc
        | Some _ -> ir_error "conflicting definitions of global %s" g.g_name
        | None -> acc @ [ g ])
      a.m_globals b.m_globals
  in
  let funcs =
    List.fold_left
      (fun acc f ->
        match List.find_opt (fun f' -> f'.f_name = f.f_name) acc with
        | Some f' when equal_func f f' -> acc
        | Some _ -> ir_error "conflicting definitions of function %s" f.f_name
        | None -> acc @ [ f ])
      a.m_funcs b.m_funcs
  in
  { m_name = name; m_globals = globals; m_funcs = funcs }
