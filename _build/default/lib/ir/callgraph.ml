(* Call graph over a module. Direct calls produce precise edges; indirect
   calls are resolved to the set of address-taken functions (any function
   whose address appears as a [Func_addr] operand anywhere), which is the
   same conservative treatment LLVM's Attributor uses absent call-site
   refinement. *)

open Types
module SMap = Cfg.SMap
module SSet = Cfg.SSet

type t = {
  callees : SSet.t SMap.t;      (* function -> functions it may call *)
  callers : SSet.t SMap.t;      (* function -> functions that may call it *)
  address_taken : SSet.t;       (* functions whose address escapes *)
  kernels : string list;        (* entry points *)
}

let address_taken_funcs (m : modul) : SSet.t =
  let taken = ref SSet.empty in
  let scan_op = function
    | Func_addr f -> taken := SSet.add f !taken
    | Reg _ | Imm_int _ | Imm_float _ | Global_addr _ | Undef _ -> ()
  in
  List.iter
    (fun f ->
      List.iter
        (fun b ->
          List.iter (fun p -> List.iter (fun (_, o) -> scan_op o) p.phi_incoming) b.b_phis;
          List.iter (fun i -> List.iter scan_op (inst_uses i)) b.b_insts;
          List.iter scan_op (term_uses b.b_term))
        f.f_blocks)
    m.m_funcs;
  !taken

let build (m : modul) : t =
  let address_taken = address_taken_funcs m in
  let callees = ref SMap.empty and callers = ref SMap.empty in
  let add_edge caller callee =
    let cs = Option.value ~default:SSet.empty (SMap.find_opt caller !callees) in
    callees := SMap.add caller (SSet.add callee cs) !callees;
    let rs = Option.value ~default:SSet.empty (SMap.find_opt callee !callers) in
    callers := SMap.add callee (SSet.add caller rs) !callers
  in
  List.iter
    (fun f ->
      callees :=
        SMap.update f.f_name
          (function None -> Some SSet.empty | s -> s)
          !callees;
      List.iter
        (fun b ->
          List.iter
            (function
              | Call (_, callee, _) -> add_edge f.f_name callee
              | Call_indirect _ ->
                SSet.iter (fun callee -> add_edge f.f_name callee) address_taken
              | _ -> ())
            b.b_insts)
        f.f_blocks)
    m.m_funcs;
  let kernels =
    List.filter_map (fun f -> if f.f_is_kernel then Some f.f_name else None) m.m_funcs
  in
  { callees = !callees; callers = !callers; address_taken; kernels }

let callees t f = Option.value ~default:SSet.empty (SMap.find_opt f t.callees)
let callers t f = Option.value ~default:SSet.empty (SMap.find_opt f t.callers)
let is_address_taken t f = SSet.mem f t.address_taken

(* Functions transitively reachable from the kernels. *)
let reachable_from_kernels t =
  let seen = ref SSet.empty in
  let rec go f =
    if not (SSet.mem f !seen) then begin
      seen := SSet.add f !seen;
      SSet.iter go (callees t f)
    end
  in
  List.iter go t.kernels;
  !seen

(* Is [f] (possibly transitively) recursive? *)
let is_recursive t fname =
  let rec dfs seen cur =
    SSet.exists
      (fun callee ->
        callee = fname || ((not (SSet.mem callee seen)) && dfs (SSet.add callee seen) callee))
      (callees t cur)
  in
  dfs SSet.empty fname
