(* Core type definitions for the OZO intermediate representation.

   The IR is a small SSA language modelled after LLVM IR, restricted to the
   constructs the paper's optimizations reason about: typed virtual
   registers, byte-addressed memory in distinct GPU address spaces,
   direct/indirect calls, GPU intrinsics, aligned/unaligned barriers and
   compiler-visible assumptions. *)

type typ =
  | I1
  | I32
  | I64
  | F64
  | Ptr of addrspace

and addrspace =
  | Global   (* device global memory, shared by the whole grid *)
  | Shared   (* per-team scratchpad ("shared"/LDS) memory *)
  | Local    (* per-thread stack memory (alloca) *)
  | Constant (* read-only memory, e.g. kernel argument buffers *)
[@@deriving show { with_path = false }, eq, ord]

(* Byte width of a value of type [t] when stored in memory. *)
let size_of_typ = function
  | I1 -> 1
  | I32 -> 4
  | I64 -> 8
  | F64 -> 8
  | Ptr _ -> 8

type reg = int [@@deriving show { with_path = false }, eq, ord]

type label = string [@@deriving show { with_path = false }, eq, ord]

type operand =
  | Reg of reg
  | Imm_int of int64 * typ    (* integer immediate of type I1/I32/I64 *)
  | Imm_float of float
  | Global_addr of string     (* address of a module-level global *)
  | Func_addr of string       (* address of a function (for indirect calls) *)
  | Undef of typ
[@@deriving show { with_path = false }, eq, ord]

type binop =
  | Add | Sub | Mul | Sdiv | Srem | Udiv | Urem
  | And | Or | Xor | Shl | Ashr | Lshr
  | Smin | Smax
  | Fadd | Fsub | Fmul | Fdiv
  | Fmin | Fmax
[@@deriving show { with_path = false }, eq, ord]

type unop =
  | Not                       (* bitwise not *)
  | Fneg | Fsqrt | Fexp | Flog | Fsin | Fcos | Fabs
  | Sitofp                    (* int -> float *)
  | Fptosi                    (* float -> int (truncating) *)
  | Zext32to64 | Trunc64to32
[@@deriving show { with_path = false }, eq, ord]

type icmp = Eq | Ne | Slt | Sle | Sgt | Sge | Ult | Ule | Ugt | Uge
[@@deriving show { with_path = false }, eq, ord]

type fcmp = Feq | Fne | Flt | Fle | Fgt | Fge
[@@deriving show { with_path = false }, eq, ord]

(* GPU intrinsics reading launch geometry / thread identity. All are
   invariant for the duration of a kernel launch, which the invariant
   value propagation pass (paper Section IV-B4) exploits. *)
type intrinsic =
  | Thread_id        (* thread index within the team *)
  | Block_id         (* team index within the grid *)
  | Block_dim        (* number of threads per team *)
  | Grid_dim         (* number of teams *)
  | Warp_size
  | Lane_id
[@@deriving show { with_path = false }, eq, ord]

type atomic_op = Atomic_add | Atomic_exch | Atomic_cas | Atomic_max
[@@deriving show { with_path = false }, eq, ord]

type inst =
  | Binop of reg * binop * operand * operand
  | Unop of reg * unop * operand
  | Icmp of reg * icmp * operand * operand
  | Fcmp of reg * fcmp * operand * operand
  | Select of reg * typ * operand * operand * operand (* dst, type, cond, if-true, if-false *)
  | Load of reg * typ * operand                   (* dst, loaded type, address *)
  | Store of typ * operand * operand              (* stored type, value, address *)
  | Ptradd of reg * operand * operand             (* dst, base pointer, byte offset *)
  | Alloca of reg * int                           (* dst, size in bytes (per-thread) *)
  | Call of reg option * string * operand list
  | Call_indirect of reg option * typ option * operand * operand list
      (* dst, return type, callee address, args *)
  | Intrinsic of reg * intrinsic
  | Barrier of { aligned : bool }
  | Atomic of reg option * atomic_op * typ * operand * operand list
      (* optional old-value dst, op, type, address, operands
         (one operand for add/exch/max, two for cas: expected, desired) *)
  | Assume of operand                             (* compiler-visible invariant *)
  | Trap of string                                (* abort execution, e.g. assert_fail *)
  | Malloc of reg * operand                       (* dst pointer, size in bytes *)
  | Free of operand
  | Debug_print of string * operand list          (* runtime tracing hook *)
[@@deriving show { with_path = false }, eq, ord]

type terminator =
  | Ret of operand option
  | Br of label
  | Cond_br of operand * label * label
  | Switch of operand * (int64 * label) list * label
  | Unreachable
[@@deriving show { with_path = false }, eq, ord]

(* A phi node: (destination, type, incoming (predecessor label, value)). *)
type phi = { phi_reg : reg; phi_typ : typ; phi_incoming : (label * operand) list }
[@@deriving show { with_path = false }, eq, ord]

type block = {
  b_label : label;
  b_phis : phi list;
  b_insts : inst list;
  b_term : terminator;
}
[@@deriving show { with_path = false }, eq]

type linkage = Internal | External
[@@deriving show { with_path = false }, eq, ord]

(* Function-level attributes. The assumption attributes mirror the paper's
   `omp assumes` extensions (Fig. 6): [Attr_aligned_barrier] marks a
   function as behaving like an aligned barrier, [Attr_no_sync] promises
   the function performs no synchronization, [Attr_no_free_state] promises
   it neither allocates nor frees runtime thread state. *)
type attr =
  | Attr_inline_hint
  | Attr_no_inline
  | Attr_aligned_barrier
  | Attr_no_sync
  | Attr_no_free_state
  | Attr_main_thread_only    (* only executed by thread 0 of a team *)
[@@deriving show { with_path = false }, eq, ord]

type func = {
  f_name : string;
  f_params : (reg * typ) list;
  f_ret : typ option;
  f_blocks : block list; (* entry block first *)
  f_linkage : linkage;
  f_attrs : attr list;
  f_is_kernel : bool;
  f_next_reg : reg; (* first unused virtual register number *)
}
[@@deriving show { with_path = false }, eq]

(* Initial contents of a global. [Zero_init] is semantically significant
   for the optimizer: the thread-state array NULL-folding rule (paper
   Section IV-B1) relies on recognizing zero-initialized regions. *)
type ginit =
  | Zero_init
  | Words_init of int64 list (* little-endian 8-byte words *)
  | No_init                  (* uninitialized (e.g. shared memory stack) *)
[@@deriving show { with_path = false }, eq, ord]

type global = {
  g_name : string;
  g_space : addrspace;
  g_size : int; (* bytes *)
  g_init : ginit;
  g_linkage : linkage;
  g_const : bool; (* never written after initialization *)
}
[@@deriving show { with_path = false }, eq, ord]

type modul = {
  m_name : string;
  m_globals : global list;
  m_funcs : func list;
}
[@@deriving show { with_path = false }, eq]

exception Ir_error of string

let ir_error fmt = Format.kasprintf (fun s -> raise (Ir_error s)) fmt

(* ------------------------------------------------------------------ *)
(* Small accessors used throughout analyses and passes.               *)
(* ------------------------------------------------------------------ *)

let find_func m name = List.find_opt (fun f -> f.f_name = name) m.m_funcs

let find_func_exn m name =
  match find_func m name with
  | Some f -> f
  | None -> ir_error "function %s not found in module %s" name m.m_name

let find_global m name = List.find_opt (fun g -> g.g_name = name) m.m_globals

let find_block f label = List.find_opt (fun b -> b.b_label = label) f.f_blocks

let find_block_exn f label =
  match find_block f label with
  | Some b -> b
  | None -> ir_error "block %s not found in function %s" label f.f_name

let entry_block f =
  match f.f_blocks with
  | b :: _ -> b
  | [] -> ir_error "function %s has no blocks" f.f_name

(* Replace a function in a module by name. *)
let update_func m f =
  { m with m_funcs = List.map (fun g -> if g.f_name = f.f_name then f else g) m.m_funcs }

let map_funcs fn m = { m with m_funcs = List.map fn m.m_funcs }

(* Destination register defined by an instruction, if any. *)
let inst_def = function
  | Binop (r, _, _, _)
  | Unop (r, _, _)
  | Icmp (r, _, _, _)
  | Fcmp (r, _, _, _)
  | Select (r, _, _, _, _)
  | Load (r, _, _)
  | Ptradd (r, _, _)
  | Alloca (r, _)
  | Intrinsic (r, _)
  | Malloc (r, _) -> Some r
  | Call (d, _, _) | Call_indirect (d, _, _, _) | Atomic (d, _, _, _, _) -> d
  | Store _ | Barrier _ | Assume _ | Trap _ | Free _ | Debug_print _ -> None

(* Operands read by an instruction. *)
let inst_uses = function
  | Binop (_, _, a, b) | Icmp (_, _, a, b) | Fcmp (_, _, a, b) | Ptradd (_, a, b) ->
    [ a; b ]
  | Unop (_, _, a) | Assume a | Free a | Malloc (_, a) -> [ a ]
  | Select (_, _, c, t, f) -> [ c; t; f ]
  | Load (_, _, addr) -> [ addr ]
  | Store (_, v, addr) -> [ v; addr ]
  | Alloca _ | Barrier _ | Trap _ -> []
  | Call (_, _, args) -> args
  | Call_indirect (_, _, callee, args) -> callee :: args
  | Intrinsic _ -> []
  | Atomic (_, _, _, addr, ops) -> addr :: ops
  | Debug_print (_, ops) -> ops

let term_uses = function
  | Ret (Some o) -> [ o ]
  | Ret None | Br _ | Unreachable -> []
  | Cond_br (c, _, _) -> [ c ]
  | Switch (o, _, _) -> [ o ]

let term_succs = function
  | Ret _ | Unreachable -> []
  | Br l -> [ l ]
  | Cond_br (_, t, f) -> if t = f then [ t ] else [ t; f ]
  | Switch (_, cases, default) ->
    let targets = default :: List.map snd cases in
    List.sort_uniq compare targets

(* Registers appearing in an operand (0 or 1). *)
let operand_regs = function
  | Reg r -> [ r ]
  | Imm_int _ | Imm_float _ | Global_addr _ | Func_addr _ | Undef _ -> []

(* Does this instruction have side effects that forbid removing it even if
   its result is unused?  [Assume] is kept: it carries information. *)
let inst_has_side_effects = function
  | Store _ | Call _ | Call_indirect _ | Barrier _ | Atomic _ | Trap _
  | Malloc _ | Free _ | Debug_print _ | Assume _ -> true
  | Binop _ | Unop _ | Icmp _ | Fcmp _ | Select _ | Load _ | Ptradd _
  | Alloca _ | Intrinsic _ -> false

(* Map the operands of an instruction (used by substitution passes). *)
let map_inst_operands fn inst =
  match inst with
  | Binop (r, op, a, b) -> Binop (r, op, fn a, fn b)
  | Unop (r, op, a) -> Unop (r, op, fn a)
  | Icmp (r, op, a, b) -> Icmp (r, op, fn a, fn b)
  | Fcmp (r, op, a, b) -> Fcmp (r, op, fn a, fn b)
  | Select (r, ty, c, t, f) -> Select (r, ty, fn c, fn t, fn f)
  | Load (r, t, addr) -> Load (r, t, fn addr)
  | Store (t, v, addr) -> Store (t, fn v, fn addr)
  | Ptradd (r, base, off) -> Ptradd (r, fn base, fn off)
  | Alloca _ as i -> i
  | Call (d, callee, args) -> Call (d, callee, List.map fn args)
  | Call_indirect (d, rt, callee, args) ->
    Call_indirect (d, rt, fn callee, List.map fn args)
  | Intrinsic _ as i -> i
  | Barrier _ as i -> i
  | Atomic (d, op, t, addr, ops) -> Atomic (d, op, t, fn addr, List.map fn ops)
  | Assume o -> Assume (fn o)
  | Trap _ as i -> i
  | Malloc (r, sz) -> Malloc (r, fn sz)
  | Free o -> Free (fn o)
  | Debug_print (s, ops) -> Debug_print (s, List.map fn ops)

let map_term_operands fn = function
  | Ret (Some o) -> Ret (Some (fn o))
  | Ret None -> Ret None
  | Br l -> Br l
  | Cond_br (c, t, f) -> Cond_br (fn c, t, f)
  | Switch (o, cases, d) -> Switch (fn o, cases, d)
  | Unreachable -> Unreachable

let map_phi_operands fn p =
  { p with phi_incoming = List.map (fun (l, o) -> (l, fn o)) p.phi_incoming }

(* All registers defined anywhere in a function (params, phis, insts). *)
let func_defs f =
  let defs = ref [] in
  List.iter (fun (r, _) -> defs := r :: !defs) f.f_params;
  List.iter
    (fun b ->
      List.iter (fun p -> defs := p.phi_reg :: !defs) b.b_phis;
      List.iter
        (fun i -> match inst_def i with Some r -> defs := r :: !defs | None -> ())
        b.b_insts)
    f.f_blocks;
  !defs
