lib/ir/parser.pp.ml: Buffer Format Int64 List String Types
