lib/ir/verifier.pp.ml: Cfg Dominance Fmt Format Hashtbl List String Types
