lib/ir/dominance.pp.ml: Cfg Hashtbl List Option Types
