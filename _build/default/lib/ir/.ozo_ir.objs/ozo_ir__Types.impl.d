lib/ir/types.pp.ml: Format List Ppx_deriving_runtime
