lib/ir/linker.pp.ml: List Types
