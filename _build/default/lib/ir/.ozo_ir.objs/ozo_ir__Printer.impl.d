lib/ir/printer.pp.ml: Fmt List String Types
