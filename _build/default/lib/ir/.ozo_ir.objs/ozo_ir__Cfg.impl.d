lib/ir/cfg.pp.ml: List Map Option Set String Types
