lib/ir/builder.pp.ml: Int64 List Printf Types
