lib/ir/callgraph.pp.ml: Cfg List Option Types
