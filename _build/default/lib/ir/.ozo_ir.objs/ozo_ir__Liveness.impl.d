lib/ir/liveness.pp.ml: Cfg Hashtbl Int List Option Set Types
