(* Parser for the textual IR form produced by {!Printer}. Round-trips with
   the printer (property-tested), so modules can be stored, diffed and
   written by hand as text fixtures. *)

open Types

exception Parse_error of string

let perr fmt = Format.kasprintf (fun s -> raise (Parse_error s)) fmt

(* ---------- lexer ------------------------------------------------------ *)

type token =
  | Ident of string     (* bare word: add, func, entry, i64, ... *)
  | Reg_tok of int      (* %12 *)
  | Global_tok of string(* @name *)
  | Func_tok of string  (* &name *)
  | Int_tok of int64
  | Float_tok of float
  | Str_tok of string   (* "..." *)
  | Punct of char       (* ( ) [ ] , : = - > *)
  | Arrow               (* -> *)
  | Newline

let is_ident_char c =
  (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9')
  || c = '_' || c = '.' || c = '$'

let lex (src : string) : token list =
  let n = String.length src in
  let toks = ref [] in
  let push t = toks := t :: !toks in
  let i = ref 0 in
  let peek k = if !i + k < n then Some src.[!i + k] else None in
  while !i < n do
    let c = src.[!i] in
    if c = '\n' then begin
      push Newline;
      incr i
    end
    else if c = ' ' || c = '\t' || c = '\r' then incr i
    else if c = '%' then begin
      (* register or hex float like %h output? printer uses %h for floats:
         they start with a digit/-; registers are %<digits> *)
      incr i;
      let start = !i in
      while !i < n && src.[!i] >= '0' && src.[!i] <= '9' do
        incr i
      done;
      if !i = start then perr "bad register at offset %d" start;
      push (Reg_tok (int_of_string (String.sub src start (!i - start))))
    end
    else if c = '@' || c = '&' then begin
      incr i;
      let start = !i in
      while !i < n && is_ident_char src.[!i] do
        incr i
      done;
      let name = String.sub src start (!i - start) in
      push (if c = '@' then Global_tok name else Func_tok name)
    end
    else if c = '"' then begin
      (* OCaml-escaped string literal *)
      let buf = Buffer.create 16 in
      incr i;
      let fin = ref false in
      while not !fin do
        if !i >= n then perr "unterminated string";
        (match src.[!i] with
        | '"' -> fin := true
        | '\\' -> (
          incr i;
          match peek 0 with
          | Some 'n' -> Buffer.add_char buf '\n'
          | Some 't' -> Buffer.add_char buf '\t'
          | Some '\\' -> Buffer.add_char buf '\\'
          | Some '"' -> Buffer.add_char buf '"'
          | Some c2 -> Buffer.add_char buf c2
          | None -> perr "bad escape")
        | c2 -> Buffer.add_char buf c2);
        incr i
      done;
      push (Str_tok (Buffer.contents buf))
    end
    else if c = '-' && peek 1 = Some '>' then begin
      push Arrow;
      i := !i + 2
    end
    else if
      (c >= '0' && c <= '9')
      || ((c = '-' || c = '+')
         && match peek 1 with Some d -> d >= '0' && d <= '9' | None -> false)
      || (c = 'n' && peek 1 = Some 'a' && peek 2 = Some 'n')
    then begin
      (* number: integer, or float (contains '.', 'x', 'p', 'e', inf, nan) *)
      let start = !i in
      if c = '-' || c = '+' then incr i;
      while
        !i < n
        &&
        let d = src.[!i] in
        (d >= '0' && d <= '9')
        || d = '.' || d = 'x' || d = 'X' || d = 'p' || d = 'P' || d = 'e'
        || d = 'a' || d = 'b' || d = 'c' || d = 'd' || d = 'f' || d = 'n' || d = 'i'
        || ((d = '-' || d = '+') && (src.[!i - 1] = 'p' || src.[!i - 1] = 'e' || src.[!i - 1] = 'P'))
      do
        incr i
      done;
      let s = String.sub src start (!i - start) in
      (* disambiguate: pure integers have only digits (and sign) *)
      let pure_int = ref true in
      String.iter (fun d -> if not ((d >= '0' && d <= '9') || d = '-' || d = '+') then pure_int := false) s;
      if !pure_int then push (Int_tok (Int64.of_string s))
      else push (Float_tok (float_of_string s))
    end
    else if is_ident_char c then begin
      let start = !i in
      while !i < n && is_ident_char src.[!i] do
        incr i
      done;
      push (Ident (String.sub src start (!i - start)))
    end
    else begin
      push (Punct c);
      incr i
    end
  done;
  List.rev !toks

(* ---------- token stream ------------------------------------------------ *)

type stream = { mutable toks : token list }

let tok_str = function
  | Ident s -> s
  | Reg_tok r -> "%" ^ string_of_int r
  | Global_tok g -> "@" ^ g
  | Func_tok f -> "&" ^ f
  | Int_tok v -> Int64.to_string v
  | Float_tok f -> string_of_float f
  | Str_tok s -> "\"" ^ s ^ "\""
  | Punct c -> String.make 1 c
  | Arrow -> "->"
  | Newline -> "\\n"

let next st =
  match st.toks with
  | [] -> perr "unexpected end of input"
  | t :: rest ->
    st.toks <- rest;
    t

let peek st = match st.toks with [] -> None | t :: _ -> Some t

let skip_newlines st =
  let rec go () =
    match peek st with
    | Some Newline ->
      ignore (next st);
      go ()
    | _ -> ()
  in
  go ()

let expect st t =
  let got = next st in
  if got <> t then perr "expected %s, got %s" (tok_str t) (tok_str got)

let expect_ident st =
  skip_newlines st;
  match next st with Ident s -> s | t -> perr "expected identifier, got %s" (tok_str t)

let accept st t =
  match peek st with
  | Some t' when t' = t ->
    ignore (next st);
    true
  | _ -> false

(* ---------- grammar ------------------------------------------------------ *)

let parse_typ st =
  skip_newlines st;
  match next st with
  | Ident "i1" -> I1
  | Ident "i32" -> I32
  | Ident "i64" -> I64
  | Ident "f64" -> F64
  | Ident "ptr" ->
    expect st (Punct '(');
    let sp =
      match expect_ident st with
      | "global" -> Global
      | "shared" -> Shared
      | "local" -> Local
      | "const" -> Constant
      | s -> perr "bad address space %s" s
    in
    expect st (Punct ')');
    Ptr sp
  | t -> perr "expected a type, got %s" (tok_str t)

(* operand: %r | <int>:typ | <float> | @g | &f | undef:typ.
   Leading newlines are skipped: the printer's boxes wrap after commas. *)
let parse_operand st =
  skip_newlines st;
  match next st with
  | Reg_tok r -> Reg r
  | Global_tok g -> Global_addr g
  | Func_tok f -> Func_addr f
  | Float_tok f -> Imm_float f
  | Int_tok v ->
    expect st (Punct ':');
    let t = parse_typ st in
    Imm_int (v, t)
  | Ident "undef" ->
    expect st (Punct ':');
    Undef (parse_typ st)
  | t -> perr "expected an operand, got %s" (tok_str t)

let binop_of_name = function
  | "add" -> Some Add | "sub" -> Some Sub | "mul" -> Some Mul | "sdiv" -> Some Sdiv
  | "srem" -> Some Srem | "udiv" -> Some Udiv | "urem" -> Some Urem | "and" -> Some And
  | "or" -> Some Or | "xor" -> Some Xor | "shl" -> Some Shl | "ashr" -> Some Ashr
  | "lshr" -> Some Lshr | "smin" -> Some Smin | "smax" -> Some Smax | "fadd" -> Some Fadd
  | "fsub" -> Some Fsub | "fmul" -> Some Fmul | "fdiv" -> Some Fdiv | "fmin" -> Some Fmin
  | "fmax" -> Some Fmax
  | _ -> None

let unop_of_name = function
  | "not" -> Some Not | "fneg" -> Some Fneg | "fsqrt" -> Some Fsqrt | "fexp" -> Some Fexp
  | "flog" -> Some Flog | "fsin" -> Some Fsin | "fcos" -> Some Fcos | "fabs" -> Some Fabs
  | "sitofp" -> Some Sitofp | "fptosi" -> Some Fptosi | "zext" -> Some Zext32to64
  | "trunc" -> Some Trunc64to32
  | _ -> None

let icmp_of_name = function
  | "eq" -> Some Eq | "ne" -> Some Ne | "slt" -> Some Slt | "sle" -> Some Sle
  | "sgt" -> Some Sgt | "sge" -> Some Sge | "ult" -> Some Ult | "ule" -> Some Ule
  | "ugt" -> Some Ugt | "uge" -> Some Uge
  | _ -> None

let fcmp_of_name = function
  | "feq" -> Some Feq | "fne" -> Some Fne | "flt" -> Some Flt | "fle" -> Some Fle
  | "fgt" -> Some Fgt | "fge" -> Some Fge
  | _ -> None

let intrinsic_of_name = function
  | "thread.id" -> Some Thread_id | "block.id" -> Some Block_id
  | "block.dim" -> Some Block_dim | "grid.dim" -> Some Grid_dim
  | "warp.size" -> Some Warp_size | "lane.id" -> Some Lane_id
  | _ -> None

let atomic_of_name = function
  | "add" -> Some Atomic_add | "exch" -> Some Atomic_exch | "cas" -> Some Atomic_cas
  | "max" -> Some Atomic_max
  | _ -> None

let parse_args st =
  (* comma-separated operands until ')' *)
  let rec go acc =
    skip_newlines st;
    match peek st with
    | Some (Punct ')') ->
      ignore (next st);
      List.rev acc
    | _ ->
      let o = parse_operand st in
      (match peek st with
      | Some (Punct ',') -> ignore (next st)
      | _ -> ());
      go (o :: acc)
  in
  go []

(* an instruction with destination [dst] (already consumed "%r =") *)
let parse_rhs st (dst : reg) : inst =
  match next st with
  | Ident "icmp" ->
    let op = match icmp_of_name (expect_ident st) with Some o -> o | None -> perr "bad icmp" in
    let a = parse_operand st in
    expect st (Punct ',');
    let b = parse_operand st in
    Icmp (dst, op, a, b)
  | Ident "fcmp" ->
    let op = match fcmp_of_name (expect_ident st) with Some o -> o | None -> perr "bad fcmp" in
    let a = parse_operand st in
    expect st (Punct ',');
    let b = parse_operand st in
    Fcmp (dst, op, a, b)
  | Ident "select" ->
    let t = parse_typ st in
    let c = parse_operand st in
    expect st (Punct ',');
    let x = parse_operand st in
    expect st (Punct ',');
    let y = parse_operand st in
    Select (dst, t, c, x, y)
  | Ident "load" ->
    let t = parse_typ st in
    expect st (Punct ',');
    let addr = parse_operand st in
    Load (dst, t, addr)
  | Ident "ptradd" ->
    let a = parse_operand st in
    expect st (Punct ',');
    let b = parse_operand st in
    Ptradd (dst, a, b)
  | Ident "alloca" -> (
    match next st with
    | Int_tok sz -> Alloca (dst, Int64.to_int sz)
    | t -> perr "alloca size expected, got %s" (tok_str t))
  | Ident "call" ->
    let name = expect_ident st in
    expect st (Punct '(');
    let args = parse_args st in
    Call (Some dst, name, args)
  | Ident "call.ind" ->
    let callee = parse_operand st in
    expect st (Punct '(');
    let args = parse_args st in
    Call_indirect (Some dst, Some I64, callee, args)
  | Ident "malloc" -> Malloc (dst, parse_operand st)
  | Ident name when String.length name > 7 && String.sub name 0 7 = "atomic." ->
    let op =
      match atomic_of_name (String.sub name 7 (String.length name - 7)) with
      | Some o -> o
      | None -> perr "bad atomic %s" name
    in
    let t = parse_typ st in
    let addr = parse_operand st in
    expect st (Punct ',');
    let rec ops acc =
      let o = parse_operand st in
      match peek st with
      | Some (Punct ',') ->
        ignore (next st);
        ops (o :: acc)
      | _ -> List.rev (o :: acc)
    in
    Atomic (Some dst, op, t, addr, ops [])
  | Ident name -> (
    match (binop_of_name name, unop_of_name name, intrinsic_of_name name) with
    | Some op, _, _ ->
      let a = parse_operand st in
      expect st (Punct ',');
      let b = parse_operand st in
      Binop (dst, op, a, b)
    | None, Some op, _ -> Unop (dst, op, parse_operand st)
    | None, None, Some i -> Intrinsic (dst, i)
    | None, None, None -> perr "unknown instruction %s" name)
  | t -> perr "bad instruction rhs %s" (tok_str t)

(* void instruction starting with [head] *)
let parse_void st head : inst =
  match head with
  | Ident "store" ->
    let t = parse_typ st in
    let v = parse_operand st in
    expect st (Punct ',');
    let addr = parse_operand st in
    Store (t, v, addr)
  | Ident "call" ->
    let name = expect_ident st in
    expect st (Punct '(');
    let args = parse_args st in
    Call (None, name, args)
  | Ident "call.ind" ->
    let callee = parse_operand st in
    expect st (Punct '(');
    let args = parse_args st in
    Call_indirect (None, None, callee, args)
  | Ident "barrier" -> Barrier { aligned = false }
  | Ident "barrier.aligned" -> Barrier { aligned = true }
  | Ident "assume" -> Assume (parse_operand st)
  | Ident "trap" -> (
    match next st with Str_tok s -> Trap s | t -> perr "trap message expected, got %s" (tok_str t))
  | Ident "free" -> Free (parse_operand st)
  | Ident "debug.print" -> (
    match next st with
    | Str_tok s ->
      expect st (Punct ',');
      let rec ops acc =
        match peek st with
        | Some Newline | None -> List.rev acc
        | Some (Punct ',') ->
          ignore (next st);
          skip_newlines st;
          ops acc
        | _ -> ops (parse_operand st :: acc)
      in
      Debug_print (s, ops [])
    | t -> perr "debug.print message expected, got %s" (tok_str t))
  | Ident name when String.length name > 7 && String.sub name 0 7 = "atomic." ->
    let op =
      match atomic_of_name (String.sub name 7 (String.length name - 7)) with
      | Some o -> o
      | None -> perr "bad atomic %s" name
    in
    let t = parse_typ st in
    let addr = parse_operand st in
    expect st (Punct ',');
    let rec ops acc =
      let o = parse_operand st in
      match peek st with
      | Some (Punct ',') ->
        ignore (next st);
        ops (o :: acc)
      | _ -> List.rev (o :: acc)
    in
    Atomic (None, op, t, addr, ops [])
  | t -> perr "unknown statement %s" (tok_str t)

(* terminator *)
let parse_term st head : terminator =
  match head with
  | Ident "ret" -> (
    match peek st with
    | Some Newline | None -> Ret None
    | _ -> Ret (Some (parse_operand st)))
  | Ident "unreachable" -> Unreachable
  | Ident "br" -> (
    (* br label  |  br %c, l1, l2 *)
    match peek st with
    | Some (Ident l) ->
      ignore (next st);
      Br l
    | _ ->
      let c = parse_operand st in
      expect st (Punct ',');
      let l1 = expect_ident st in
      expect st (Punct ',');
      let l2 = expect_ident st in
      Cond_br (c, l1, l2))
  | Ident "switch" ->
    let o = parse_operand st in
    expect st (Punct ',');
    expect st (Ident "default");
    let d = expect_ident st in
    expect st (Punct '[');
    let rec cases acc =
      skip_newlines st;
      match peek st with
      | Some (Punct ']') ->
        ignore (next st);
        List.rev acc
      | Some (Punct ',') ->
        ignore (next st);
        cases acc
      | _ -> (
        match next st with
        | Int_tok v ->
          expect st Arrow;
          let l = expect_ident st in
          cases ((v, l) :: acc)
        | t -> perr "switch case expected, got %s" (tok_str t))
    in
    Switch (o, cases [], d)
  | t -> perr "unknown terminator %s" (tok_str t)

let parse_phi st (dst : reg) : phi =
  (* "phi" typ [l: o, l: o] — "phi" already consumed *)
  let t = parse_typ st in
  expect st (Punct '[');
  let rec inc acc =
    match peek st with
    | Some (Punct ']') ->
      ignore (next st);
      List.rev acc
    | Some (Punct ',') ->
      ignore (next st);
      inc acc
    | Some Newline ->
      ignore (next st);
      inc acc
    | _ ->
      let l = expect_ident st in
      expect st (Punct ':');
      let o = parse_operand st in
      inc ((l, o) :: acc)
  in
  { phi_reg = dst; phi_typ = t; phi_incoming = inc [] }

(* one line inside a block: phi | inst | terminator. Returns which. *)
type line = Lphi of phi | Linst of inst | Lterm of terminator

let parse_line st : line =
  match peek st with
  | Some (Reg_tok r) -> (
    ignore (next st);
    expect st (Punct '=');
    match peek st with
    | Some (Ident "phi") ->
      ignore (next st);
      Lphi (parse_phi st r)
    | _ -> Linst (parse_rhs st r))
  | Some (Ident ("ret" | "br" | "switch" | "unreachable")) ->
    let h = next st in
    Lterm (parse_term st h)
  | Some _ ->
    let h = next st in
    Linst (parse_void st h)
  | None -> perr "unexpected end of input in block"

let attr_of_name = function
  | "inline_hint" -> Attr_inline_hint
  | "no_inline" -> Attr_no_inline
  | "aligned_barrier" -> Attr_aligned_barrier
  | "no_sync" -> Attr_no_sync
  | "no_free_state" -> Attr_no_free_state
  | "main_thread_only" -> Attr_main_thread_only
  | s -> perr "unknown attribute %s" s

(* function header: [kernel] [internal] func NAME(%0: typ, ...) [-> typ] [attrs] *)
let parse_func st : func =
  skip_newlines st;
  let is_kernel = accept st (Ident "kernel") in
  let linkage = if accept st (Ident "internal") then Internal else External in
  expect st (Ident "func");
  let name = expect_ident st in
  expect st (Punct '(');
  let rec params acc =
    match peek st with
    | Some (Punct ')') ->
      ignore (next st);
      List.rev acc
    | Some (Punct ',') | Some Newline ->
      ignore (next st);
      params acc
    | _ -> (
      match next st with
      | Reg_tok r ->
        expect st (Punct ':');
        let t = parse_typ st in
        params ((r, t) :: acc)
      | t -> perr "parameter expected, got %s" (tok_str t))
  in
  let ps = params [] in
  let ret = if accept st Arrow then Some (parse_typ st) else None in
  let attrs =
    if accept st (Punct '[') then begin
      let rec go acc =
        match next st with
        | Punct ']' -> List.rev acc
        | Punct ',' | Newline -> go acc
        | Ident a -> go (attr_of_name a :: acc)
        | t -> perr "attribute expected, got %s" (tok_str t)
      in
      go []
    end
    else []
  in
  skip_newlines st;
  (* blocks: "label:" then lines until the next label or end of function
     (blank separation is already consumed by skip_newlines) *)
  let blocks = ref [] in
  let rec parse_blocks () =
    match (peek st, st.toks) with
    | Some (Ident lbl), _ :: Punct ':' :: _ ->
      ignore (next st);
      ignore (next st);
      skip_newlines st;
      let phis = ref [] and insts = ref [] and term = ref None in
      let fin = ref false in
      while not !fin do
        skip_newlines st;
        match (peek st, st.toks) with
        | None, _ -> fin := true
        | Some (Ident _), _ :: Punct ':' :: _ -> fin := true (* next label *)
        | Some (Ident ("func" | "kernel" | "module" | "global")), _ -> fin := true
        | _ -> (
          match parse_line st with
          | Lphi p -> phis := p :: !phis
          | Linst i -> insts := i :: !insts
          | Lterm t ->
            term := Some t;
            fin := true)
      done;
      (match !term with
      | None -> perr "block %s lacks a terminator" lbl
      | Some t ->
        blocks :=
          { b_label = lbl; b_phis = List.rev !phis; b_insts = List.rev !insts; b_term = t }
          :: !blocks);
      skip_newlines st;
      parse_blocks ()
    | _ -> ()
  in
  parse_blocks ();
  let blocks = List.rev !blocks in
  let next_reg =
    List.fold_left
      (fun acc b ->
        let acc = List.fold_left (fun a p -> max a (p.phi_reg + 1)) acc b.b_phis in
        List.fold_left
          (fun a i -> match inst_def i with Some r -> max a (r + 1) | None -> a)
          acc b.b_insts)
      (List.fold_left (fun a (r, _) -> max a (r + 1)) 0 ps)
      blocks
  in
  { f_name = name; f_params = ps; f_ret = ret; f_blocks = blocks; f_linkage = linkage;
    f_attrs = attrs; f_is_kernel = is_kernel; f_next_reg = next_reg }

(* global line: [internal] [const] global @n : space[SIZE] [= zeroinit | = [w,...]] *)
let parse_global st : global =
  let linkage = if accept st (Ident "internal") then Internal else External in
  let const = accept st (Ident "const") in
  expect st (Ident "global");
  let name =
    match next st with Global_tok g -> g | t -> perr "global name expected, got %s" (tok_str t)
  in
  expect st (Punct ':');
  let space =
    match expect_ident st with
    | "global" -> Global
    | "shared" -> Shared
    | "local" -> Local
    | "const" -> Constant
    | s -> perr "bad space %s" s
  in
  expect st (Punct '[');
  let size =
    match next st with Int_tok v -> Int64.to_int v | t -> perr "size expected, got %s" (tok_str t)
  in
  expect st (Punct ']');
  let init =
    if accept st (Punct '=') then
      if accept st (Ident "zeroinit") then Zero_init
      else begin
        expect st (Punct '[');
        let rec ws acc =
          match next st with
          | Punct ']' -> List.rev acc
          | Punct ',' | Newline -> ws acc
          | Int_tok v -> ws (v :: acc)
          | t -> perr "word expected, got %s" (tok_str t)
        in
        Words_init (ws [])
      end
    else No_init
  in
  { g_name = name; g_space = space; g_size = size; g_init = init; g_linkage = linkage;
    g_const = const }

let parse_module (src : string) : modul =
  let st = { toks = lex src } in
  skip_newlines st;
  expect st (Ident "module");
  let name = expect_ident st in
  skip_newlines st;
  let globals = ref [] and funcs = ref [] in
  (* a top-level item is a global or a function; scan to the first
     keyword to disambiguate "internal global" from "internal func" *)
  let rec first_kw = function
    | Ident "func" :: _ | Ident "kernel" :: _ -> `Func
    | Ident "global" :: _ -> `Global
    | _ :: rest -> first_kw rest
    | [] -> `Eof
  in
  let rec go () =
    skip_newlines st;
    match peek st with
    | None -> ()
    | Some _ -> (
      match first_kw st.toks with
      | `Global ->
        globals := parse_global st :: !globals;
        go ()
      | `Func ->
        funcs := parse_func st :: !funcs;
        go ()
      | `Eof -> ())
  in
  go ();
  skip_newlines st;
  (match peek st with
  | None -> ()
  | Some t -> perr "trailing input at module level: %s" (tok_str t));
  { m_name = name; m_globals = List.rev !globals; m_funcs = List.rev !funcs }
