(* Stateful convenience layer for constructing IR modules.

   The runtime library (lib/runtime) and the OpenMP/CUDA lowerings
   (lib/frontend) build all of their code through this interface, which
   mirrors LLVM's IRBuilder: position at a block, append instructions,
   seal blocks with a terminator. *)

open Types

type fctx = {
  fc_name : string;
  fc_params : (reg * typ) list;
  fc_ret : typ option;
  fc_linkage : linkage;
  fc_attrs : attr list;
  fc_kernel : bool;
  mutable fc_next_reg : reg;
  mutable fc_next_label : int;
  (* Blocks in creation order; each is (label, phis rev, insts rev, term). *)
  mutable fc_blocks : (label * phi list ref * inst list ref * terminator option ref) list;
  mutable fc_current : (label * phi list ref * inst list ref * terminator option ref) option;
}

type t = {
  mutable md_name : string;
  mutable md_globals : global list; (* reversed *)
  mutable md_funcs : func list;     (* reversed *)
  mutable md_fctx : fctx option;
}

let create name = { md_name = name; md_globals = []; md_funcs = []; md_fctx = None }

let add_global t ?(linkage = Internal) ?(const = false) ?(init = Zero_init) ~space ~size
    name =
  if List.exists (fun g -> g.g_name = name) t.md_globals then
    ir_error "duplicate global %s" name;
  t.md_globals <-
    { g_name = name; g_space = space; g_size = size; g_init = init;
      g_linkage = linkage; g_const = const }
    :: t.md_globals;
  Global_addr name

let ctx t =
  match t.md_fctx with
  | Some c -> c
  | None -> ir_error "no function under construction"

let fresh_reg t =
  let c = ctx t in
  let r = c.fc_next_reg in
  c.fc_next_reg <- r + 1;
  r

let fresh_label t hint =
  let c = ctx t in
  let n = c.fc_next_label in
  c.fc_next_label <- n + 1;
  Printf.sprintf "%s.%d" hint n

(* Start a new function; returns the parameter operands in order. *)
let begin_func t ?(linkage = Internal) ?(attrs = []) ?(kernel = false) ~name ~params ~ret
    () =
  (match t.md_fctx with
  | Some c -> ir_error "begin_func %s while %s is still open" name c.fc_name
  | None -> ());
  let param_regs = List.mapi (fun i ty -> (i, ty)) params in
  let c =
    { fc_name = name; fc_params = param_regs; fc_ret = ret; fc_linkage = linkage;
      fc_attrs = attrs; fc_kernel = kernel; fc_next_reg = List.length params;
      fc_next_label = 0; fc_blocks = []; fc_current = None }
  in
  t.md_fctx <- Some c;
  List.map (fun (r, _) -> Reg r) param_regs

(* Create (or re-enter) a block and make it current. *)
let set_block t label =
  let c = ctx t in
  match List.find_opt (fun (l, _, _, _) -> l = label) c.fc_blocks with
  | Some b -> c.fc_current <- Some b
  | None ->
    let b = (label, ref [], ref [], ref None) in
    c.fc_blocks <- b :: c.fc_blocks;
    c.fc_current <- Some b

let current_label t =
  match (ctx t).fc_current with
  | Some (l, _, _, _) -> l
  | None -> ir_error "no current block"

let append t inst =
  match (ctx t).fc_current with
  | Some (l, _, insts, term) ->
    (match !term with
    | Some _ -> ir_error "appending to terminated block %s" l
    | None -> insts := inst :: !insts)
  | None -> ir_error "no current block"

let terminate t term =
  match (ctx t).fc_current with
  | Some (l, _, _, tref) ->
    (match !tref with
    | Some _ -> ir_error "block %s already terminated" l
    | None ->
      tref := Some term;
      (ctx t).fc_current <- None)
  | None -> ir_error "no current block"

(* Is the current block already closed (or absent)?  Lowerings use this
   to avoid emitting dead joins after returns. *)
let is_terminated t =
  match (ctx t).fc_current with Some _ -> false | None -> true

let end_func t =
  let c = ctx t in
  let blocks =
    List.rev_map
      (fun (l, phis, insts, term) ->
        match !term with
        | None -> ir_error "block %s of %s lacks a terminator" l c.fc_name
        | Some term ->
          { b_label = l; b_phis = List.rev !phis; b_insts = List.rev !insts;
            b_term = term })
      c.fc_blocks
  in
  if blocks = [] then ir_error "function %s has no blocks" c.fc_name;
  let f =
    { f_name = c.fc_name; f_params = c.fc_params; f_ret = c.fc_ret; f_blocks = blocks;
      f_linkage = c.fc_linkage; f_attrs = c.fc_attrs; f_is_kernel = c.fc_kernel;
      f_next_reg = c.fc_next_reg }
  in
  if List.exists (fun g -> g.f_name = f.f_name) t.md_funcs then
    ir_error "duplicate function %s" f.f_name;
  t.md_funcs <- f :: t.md_funcs;
  t.md_fctx <- None;
  f

let finish t =
  (match t.md_fctx with
  | Some c -> ir_error "finish with open function %s" c.fc_name
  | None -> ());
  { m_name = t.md_name; m_globals = List.rev t.md_globals;
    m_funcs = List.rev t.md_funcs }

(* ------------------------------------------------------------------ *)
(* Instruction helpers. Each appends and returns the result operand.  *)
(* ------------------------------------------------------------------ *)

let i1 b = Imm_int ((if b then 1L else 0L), I1)
let i32 n = Imm_int (Int64.of_int n, I32)
let i64 n = Imm_int (Int64.of_int n, I64)
let i64' n = Imm_int (n, I64)
let f64 x = Imm_float x

let binop t op a b =
  let r = fresh_reg t in
  append t (Binop (r, op, a, b));
  Reg r

let add t a b = binop t Add a b
let sub t a b = binop t Sub a b
let mul t a b = binop t Mul a b
let sdiv t a b = binop t Sdiv a b
let srem t a b = binop t Srem a b
let and_ t a b = binop t And a b
let or_ t a b = binop t Or a b
let xor t a b = binop t Xor a b
let shl t a b = binop t Shl a b
let smin t a b = binop t Smin a b
let smax t a b = binop t Smax a b
let fadd t a b = binop t Fadd a b
let fsub t a b = binop t Fsub a b
let fmul t a b = binop t Fmul a b
let fdiv t a b = binop t Fdiv a b

let unop t op a =
  let r = fresh_reg t in
  append t (Unop (r, op, a));
  Reg r

let icmp t op a b =
  let r = fresh_reg t in
  append t (Icmp (r, op, a, b));
  Reg r

let fcmp t op a b =
  let r = fresh_reg t in
  append t (Fcmp (r, op, a, b));
  Reg r

let select t typ c a b =
  let r = fresh_reg t in
  append t (Select (r, typ, c, a, b));
  Reg r

let load t typ addr =
  let r = fresh_reg t in
  append t (Load (r, typ, addr));
  Reg r

let store t typ value addr = append t (Store (typ, value, addr))

let ptradd t base off =
  let r = fresh_reg t in
  append t (Ptradd (r, base, off));
  Reg r

let alloca t size =
  let r = fresh_reg t in
  append t (Alloca (r, size));
  Reg r

let call t ?ret name args =
  match ret with
  | Some _ ->
    let r = fresh_reg t in
    append t (Call (Some r, name, args));
    Some (Reg r)
  | None ->
    append t (Call (None, name, args));
    None

let call_val t name args =
  let r = fresh_reg t in
  append t (Call (Some r, name, args));
  Reg r

let call_void t name args = append t (Call (None, name, args))

let call_indirect_void t callee args = append t (Call_indirect (None, None, callee, args))

let intrinsic t i =
  let r = fresh_reg t in
  append t (Intrinsic (r, i));
  Reg r

let thread_id t = intrinsic t Thread_id
let block_id t = intrinsic t Block_id
let block_dim t = intrinsic t Block_dim
let grid_dim t = intrinsic t Grid_dim

let barrier t ~aligned = append t (Barrier { aligned })

let atomic t ?(dst = false) op typ addr ops =
  if dst then begin
    let r = fresh_reg t in
    append t (Atomic (Some r, op, typ, addr, ops));
    Some (Reg r)
  end
  else begin
    append t (Atomic (None, op, typ, addr, ops));
    None
  end

let atomic_add t typ addr v = ignore (atomic t ~dst:false Atomic_add typ addr [ v ])

let assume t cond = append t (Assume cond)
let trap t msg = append t (Trap msg)

let malloc t size =
  let r = fresh_reg t in
  append t (Malloc (r, size));
  Reg r

let free t p = append t (Free p)

let debug_print t msg ops = append t (Debug_print (msg, ops))

let ret t o = terminate t (Ret o)
let br t l = terminate t (Br l)
let cond_br t c l1 l2 = terminate t (Cond_br (c, l1, l2))
let unreachable t = terminate t Unreachable

let phi t typ incoming =
  match (ctx t).fc_current with
  | Some (_, phis, insts, _) ->
    if !insts <> [] then ir_error "phi after non-phi instruction";
    let r = fresh_reg t in
    phis := { phi_reg = r; phi_typ = typ; phi_incoming = incoming } :: !phis;
    Reg r
  | None -> ir_error "no current block"

(* Structured helper: if-then-else on [cond]; [then_] and [else_] emit the
   branch bodies (and must leave their blocks unterminated, or terminate
   them with returns). Execution joins in a fresh block. *)
let if_then_else t cond ~then_ ~else_ =
  let lt = fresh_label t "then" in
  let lf = fresh_label t "else" in
  let lj = fresh_label t "join" in
  cond_br t cond lt lf;
  set_block t lt;
  then_ ();
  if not (is_terminated t) then br t lj;
  set_block t lf;
  else_ ();
  if not (is_terminated t) then br t lj;
  set_block t lj

let if_then t cond ~then_ =
  if_then_else t cond ~then_ ~else_:(fun () -> ())

(* Structured counted loop: for (iv = lo; iv < hi; iv += step) body iv.
   Emits a pre-checked loop with a phi for the induction variable. *)
let for_loop t ~lo ~hi ~step ~body =
  let lhead = fresh_label t "loop.head" in
  let lbody = fresh_label t "loop.body" in
  let lexit = fresh_label t "loop.exit" in
  let pred = current_label t in
  br t lhead;
  set_block t lhead;
  (* The phi's latch incoming is patched by re-creating it below; instead we
     build the phi with both incomings up-front using a forward register. *)
  let c = ctx t in
  let iv_reg = c.fc_next_reg in
  c.fc_next_reg <- iv_reg + 1;
  let next_reg = ref None in
  (* placeholder for latch value; filled after body is emitted *)
  let latch_label = fresh_label t "loop.latch" in
  (match c.fc_current with
  | Some (_, phis, _, _) ->
    phis :=
      { phi_reg = iv_reg; phi_typ = I64;
        phi_incoming = [ (pred, lo); (latch_label, Reg (iv_reg + 1)) ] }
      :: !phis;
    (* reserve iv_reg+1 for the increment *)
    c.fc_next_reg <- iv_reg + 2;
    next_reg := Some (iv_reg + 1)
  | None -> assert false);
  let iv = Reg iv_reg in
  let cont = icmp t Slt iv hi in
  cond_br t cont lbody lexit;
  set_block t lbody;
  body iv;
  if not (is_terminated t) then br t latch_label;
  set_block t latch_label;
  (match !next_reg with
  | Some r -> append t (Binop (r, Add, iv, step))
  | None -> assert false);
  br t lhead;
  set_block t lexit;
  iv
