(* Structural and SSA well-formedness checks. Run after construction and
   between optimization passes in the test suite; the virtual GPU assumes
   verified input. *)

open Types
module SSet = Cfg.SSet

type violation = { v_func : string; v_msg : string }

let pp_violation ppf v = Fmt.pf ppf "[%s] %s" v.v_func v.v_msg

let verify_func (m : modul) (f : func) : violation list =
  let errs = ref [] in
  let err fmt = Format.kasprintf (fun s -> errs := { v_func = f.f_name; v_msg = s } :: !errs) fmt in
  (* unique labels *)
  let labels = List.map (fun b -> b.b_label) f.f_blocks in
  let lset = SSet.of_list labels in
  if List.length labels <> SSet.cardinal lset then err "duplicate block labels";
  (* terminator targets exist *)
  List.iter
    (fun b ->
      List.iter
        (fun s -> if not (SSet.mem s lset) then err "block %s branches to unknown %s" b.b_label s)
        (term_succs b.b_term))
    f.f_blocks;
  (* single definition per register *)
  let defs = func_defs f in
  let dset = Hashtbl.create 64 in
  List.iter
    (fun r ->
      if Hashtbl.mem dset r then err "register %%%d defined more than once" r
      else Hashtbl.replace dset r ())
    defs;
  (* entry block has no phis *)
  (match f.f_blocks with
  | b :: _ when b.b_phis <> [] -> err "entry block %s has phis" b.b_label
  | _ -> ());
  (* phi incoming labels = CFG predecessors *)
  let cfg = Cfg.of_func f in
  List.iter
    (fun b ->
      let preds = SSet.of_list (Cfg.preds cfg b.b_label) in
      List.iter
        (fun p ->
          let inc = SSet.of_list (List.map fst p.phi_incoming) in
          if not (SSet.equal inc preds) && Cfg.is_reachable cfg b.b_label then
            err "phi %%%d in %s: incoming {%s} but preds {%s}" p.phi_reg b.b_label
              (String.concat "," (SSet.elements inc))
              (String.concat "," (SSet.elements preds)))
        b.b_phis)
    f.f_blocks;
  (* defs dominate uses (reachable blocks only) *)
  let dom = Dominance.dominators cfg in
  (* def location: block label and index within the block; params/phis get
     index -1 (beginning of block / entry) *)
  let def_loc = Hashtbl.create 64 in
  let entry = (entry_block f).b_label in
  List.iter (fun (r, _) -> Hashtbl.replace def_loc r (entry, -1)) f.f_params;
  List.iter
    (fun b ->
      List.iter (fun p -> Hashtbl.replace def_loc p.phi_reg (b.b_label, -1)) b.b_phis;
      List.iteri
        (fun i inst ->
          match inst_def inst with
          | Some r -> Hashtbl.replace def_loc r (b.b_label, i)
          | None -> ())
        b.b_insts)
    f.f_blocks;
  let check_use ~use_block ~use_idx o =
    List.iter
      (fun r ->
        match Hashtbl.find_opt def_loc r with
        | None -> err "use of undefined register %%%d in %s" r use_block
        | Some (def_block, def_idx) ->
          if def_block = use_block then begin
            if def_idx >= use_idx then
              err "register %%%d used before its definition in %s" r use_block
          end
          else if
            Dominance.in_tree dom def_block && Dominance.in_tree dom use_block
            && not (Dominance.dominates dom def_block use_block)
          then err "definition of %%%d (%s) does not dominate use (%s)" r def_block use_block)
      (operand_regs o)
  in
  List.iter
    (fun b ->
      if Cfg.is_reachable cfg b.b_label then begin
        (* phi operands are checked against the incoming edge: def must
           dominate the predecessor's end *)
        List.iter
          (fun p ->
            List.iter
              (fun (pred, o) ->
                List.iter
                  (fun r ->
                    match Hashtbl.find_opt def_loc r with
                    | None -> err "phi %%%d uses undefined %%%d" p.phi_reg r
                    | Some (def_block, _) ->
                      if
                        Dominance.in_tree dom def_block && Dominance.in_tree dom pred
                        && not (Dominance.dominates dom def_block pred)
                      then
                        err "phi %%%d in %s: def of %%%d (%s) does not dominate edge from %s"
                          p.phi_reg b.b_label r def_block pred)
                  (operand_regs o))
              p.phi_incoming)
          b.b_phis;
        List.iteri
          (fun i inst ->
            List.iter (check_use ~use_block:b.b_label ~use_idx:i) (inst_uses inst))
          b.b_insts;
        List.iter
          (check_use ~use_block:b.b_label ~use_idx:(List.length b.b_insts))
          (term_uses b.b_term)
      end)
    f.f_blocks;
  (* referenced globals and direct callees exist *)
  let check_refs o =
    match o with
    | Global_addr g ->
      if find_global m g = None then err "reference to unknown global @%s" g
    | Func_addr fn ->
      if find_func m fn = None then err "reference to unknown function &%s" fn
    | Reg _ | Imm_int _ | Imm_float _ | Undef _ -> ()
  in
  List.iter
    (fun b ->
      List.iter
        (fun i ->
          List.iter check_refs (inst_uses i);
          match i with
          | Call (_, callee, _) ->
            if find_func m callee = None then err "call to unknown function %s" callee
          | _ -> ())
        b.b_insts)
    f.f_blocks;
  List.rev !errs

let verify_module (m : modul) : violation list =
  let dup_globals =
    let seen = Hashtbl.create 16 in
    List.filter_map
      (fun g ->
        if Hashtbl.mem seen g.g_name then
          Some { v_func = "<module>"; v_msg = "duplicate global " ^ g.g_name }
        else begin
          Hashtbl.replace seen g.g_name ();
          None
        end)
      m.m_globals
  in
  let dup_funcs =
    let seen = Hashtbl.create 16 in
    List.filter_map
      (fun f ->
        if Hashtbl.mem seen f.f_name then
          Some { v_func = "<module>"; v_msg = "duplicate function " ^ f.f_name }
        else begin
          Hashtbl.replace seen f.f_name ();
          None
        end)
      m.m_funcs
  in
  dup_globals @ dup_funcs @ List.concat_map (verify_func m) m.m_funcs

exception Invalid of violation list

let verify_exn m =
  match verify_module m with
  | [] -> ()
  | vs ->
    let msg = String.concat "; " (List.map (Fmt.str "%a" pp_violation) vs) in
    raise (Invalid vs) |> fun () -> ignore msg

let check m =
  match verify_module m with
  | [] -> Ok ()
  | vs -> Error vs
