(* Dominator and post-dominator trees (Cooper–Harvey–Kennedy iterative
   algorithm). Post-dominance is computed on the reversed CFG with a
   virtual exit node joining all Ret/Unreachable blocks; the virtual exit
   is also used as the reconvergence point of divergent warps in the
   virtual GPU. *)

open Types
module SMap = Cfg.SMap

type t = {
  idom : label option SMap.t; (* None for the root *)
  root : label;
  (* children lists, for tree walks *)
  children : label list SMap.t;
  (* depth of each node in the tree, root = 0 *)
  depth : int SMap.t;
}

(* Generic CHK fixpoint over an arbitrary graph given in RPO with a root. *)
let compute_idoms ~root ~rpo ~preds =
  let index = Hashtbl.create 64 in
  List.iteri (fun i l -> Hashtbl.replace index l i) rpo;
  let idom : (label, label) Hashtbl.t = Hashtbl.create 64 in
  Hashtbl.replace idom root root;
  let intersect a b =
    let rec go a b =
      if a = b then a
      else
        let ia = Hashtbl.find index a and ib = Hashtbl.find index b in
        if ia > ib then go (Hashtbl.find idom a) b else go a (Hashtbl.find idom b)
    in
    go a b
  in
  let changed = ref true in
  while !changed do
    changed := false;
    List.iter
      (fun l ->
        if l <> root then begin
          let processed_preds =
            List.filter (fun p -> Hashtbl.mem idom p && Hashtbl.mem index p) (preds l)
          in
          match processed_preds with
          | [] -> ()
          | first :: rest ->
            let new_idom = List.fold_left intersect first rest in
            (match Hashtbl.find_opt idom l with
            | Some old when old = new_idom -> ()
            | _ ->
              Hashtbl.replace idom l new_idom;
              changed := true)
        end)
      rpo
  done;
  idom

let build ~root ~rpo ~preds =
  let idom_tbl = compute_idoms ~root ~rpo ~preds in
  let idom =
    List.fold_left
      (fun acc l ->
        if l = root then SMap.add l None acc
        else
          match Hashtbl.find_opt idom_tbl l with
          | Some d -> SMap.add l (Some d) acc
          | None -> acc (* unreachable from root: not in the tree *))
      SMap.empty rpo
  in
  let children =
    SMap.fold
      (fun l d acc ->
        match d with
        | Some d ->
          let existing = Option.value ~default:[] (SMap.find_opt d acc) in
          SMap.add d (l :: existing) acc
        | None -> acc)
      idom SMap.empty
  in
  let depth = ref (SMap.singleton root 0) in
  let rec assign_depth l d =
    depth := SMap.add l d !depth;
    List.iter
      (fun c -> assign_depth c (d + 1))
      (Option.value ~default:[] (SMap.find_opt l children))
  in
  assign_depth root 0;
  { idom; root; children; depth = !depth }

(* Dominator tree of a function's CFG. *)
let dominators (cfg : Cfg.t) : t =
  build ~root:cfg.entry ~rpo:cfg.rpo ~preds:(Cfg.preds cfg)

let virtual_exit = "<exit>"

(* Post-dominator tree: dominators of the reversed graph, rooted at a
   virtual exit node that every Ret/Unreachable block feeds into.

   In the reversed graph G' (edge u->v iff v->u in the original extended
   with exit->virtual edges):
   - successors of l in G' are the original *predecessors* of l (and the
     exit blocks for the virtual root) — used for the RPO walk;
   - predecessors of l in G' are the original *successors* of l, plus the
     virtual exit when l is an exit block — used by the CHK fixpoint. *)
let post_dominators (cfg : Cfg.t) : t =
  let exits = Cfg.exits cfg in
  let succs_rev l = if l = virtual_exit then exits else Cfg.preds cfg l in
  let preds_rev l =
    if l = virtual_exit then []
    else Cfg.succs cfg l @ (if List.mem l exits then [ virtual_exit ] else [])
  in
  (* RPO of the reversed graph starting at the virtual exit. *)
  let visited = Hashtbl.create 64 in
  let order = ref [] in
  let rec dfs l =
    if not (Hashtbl.mem visited l) then begin
      Hashtbl.replace visited l ();
      List.iter dfs (succs_rev l);
      order := l :: !order
    end
  in
  dfs virtual_exit;
  build ~root:virtual_exit ~rpo:!order ~preds:preds_rev

let idom t l = Option.join (SMap.find_opt l t.idom)

let in_tree t l = SMap.mem l t.idom

(* Does [a] dominate [b] (reflexively)? *)
let dominates t a b =
  if not (in_tree t a) || not (in_tree t b) then false
  else
    let rec walk x =
      if x = a then true
      else match idom t x with Some d -> walk d | None -> false
    in
    walk b

let strictly_dominates t a b = a <> b && dominates t a b

(* Immediate post-dominator usable as a reconvergence point: the ipdom in
   the post-dominator tree, skipping the virtual exit. *)
let reconvergence_point t l =
  match idom t l with
  | Some d when d <> virtual_exit -> Some d
  | _ -> None

let depth t l = Option.value ~default:0 (SMap.find_opt l t.depth)
