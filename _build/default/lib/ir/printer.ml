(* Human-readable textual form of the IR, LLVM-flavoured. Used by the
   examples, tests and the optimization-remark machinery. *)

open Types

let pp_typ ppf = function
  | I1 -> Fmt.string ppf "i1"
  | I32 -> Fmt.string ppf "i32"
  | I64 -> Fmt.string ppf "i64"
  | F64 -> Fmt.string ppf "f64"
  | Ptr Global -> Fmt.string ppf "ptr(global)"
  | Ptr Shared -> Fmt.string ppf "ptr(shared)"
  | Ptr Local -> Fmt.string ppf "ptr(local)"
  | Ptr Constant -> Fmt.string ppf "ptr(const)"

let pp_operand ppf = function
  | Reg r -> Fmt.pf ppf "%%%d" r
  | Imm_int (v, t) -> Fmt.pf ppf "%Ld:%a" v pp_typ t
  | Imm_float x -> Fmt.pf ppf "%h" x
  | Global_addr g -> Fmt.pf ppf "@%s" g
  | Func_addr f -> Fmt.pf ppf "&%s" f
  | Undef t -> Fmt.pf ppf "undef:%a" pp_typ t

let binop_name = function
  | Add -> "add" | Sub -> "sub" | Mul -> "mul" | Sdiv -> "sdiv" | Srem -> "srem"
  | Udiv -> "udiv" | Urem -> "urem" | And -> "and" | Or -> "or" | Xor -> "xor"
  | Shl -> "shl" | Ashr -> "ashr" | Lshr -> "lshr" | Smin -> "smin" | Smax -> "smax"
  | Fadd -> "fadd" | Fsub -> "fsub" | Fmul -> "fmul" | Fdiv -> "fdiv"
  | Fmin -> "fmin" | Fmax -> "fmax"

let unop_name = function
  | Not -> "not" | Fneg -> "fneg" | Fsqrt -> "fsqrt" | Fexp -> "fexp"
  | Flog -> "flog" | Fsin -> "fsin" | Fcos -> "fcos" | Fabs -> "fabs"
  | Sitofp -> "sitofp" | Fptosi -> "fptosi"
  | Zext32to64 -> "zext" | Trunc64to32 -> "trunc"

let icmp_name = function
  | Eq -> "eq" | Ne -> "ne" | Slt -> "slt" | Sle -> "sle" | Sgt -> "sgt"
  | Sge -> "sge" | Ult -> "ult" | Ule -> "ule" | Ugt -> "ugt" | Uge -> "uge"

let fcmp_name = function
  | Feq -> "feq" | Fne -> "fne" | Flt -> "flt" | Fle -> "fle" | Fgt -> "fgt"
  | Fge -> "fge"

let intrinsic_name = function
  | Thread_id -> "thread.id"
  | Block_id -> "block.id"
  | Block_dim -> "block.dim"
  | Grid_dim -> "grid.dim"
  | Warp_size -> "warp.size"
  | Lane_id -> "lane.id"

let atomic_name = function
  | Atomic_add -> "add" | Atomic_exch -> "exch" | Atomic_cas -> "cas"
  | Atomic_max -> "max"

let pp_args = Fmt.list ~sep:Fmt.comma pp_operand

let pp_inst ppf = function
  | Binop (r, op, a, b) ->
    Fmt.pf ppf "%%%d = %s %a, %a" r (binop_name op) pp_operand a pp_operand b
  | Unop (r, op, a) -> Fmt.pf ppf "%%%d = %s %a" r (unop_name op) pp_operand a
  | Icmp (r, op, a, b) ->
    Fmt.pf ppf "%%%d = icmp %s %a, %a" r (icmp_name op) pp_operand a pp_operand b
  | Fcmp (r, op, a, b) ->
    Fmt.pf ppf "%%%d = fcmp %s %a, %a" r (fcmp_name op) pp_operand a pp_operand b
  | Select (r, ty, c, a, b) ->
    Fmt.pf ppf "%%%d = select %a %a, %a, %a" r pp_typ ty pp_operand c pp_operand a
      pp_operand b
  | Load (r, t, addr) -> Fmt.pf ppf "%%%d = load %a, %a" r pp_typ t pp_operand addr
  | Store (t, v, addr) ->
    Fmt.pf ppf "store %a %a, %a" pp_typ t pp_operand v pp_operand addr
  | Ptradd (r, base, off) ->
    Fmt.pf ppf "%%%d = ptradd %a, %a" r pp_operand base pp_operand off
  | Alloca (r, sz) -> Fmt.pf ppf "%%%d = alloca %d" r sz
  | Call (Some r, f, args) -> Fmt.pf ppf "%%%d = call %s(%a)" r f pp_args args
  | Call (None, f, args) -> Fmt.pf ppf "call %s(%a)" f pp_args args
  | Call_indirect (Some r, _, callee, args) ->
    Fmt.pf ppf "%%%d = call.ind %a(%a)" r pp_operand callee pp_args args
  | Call_indirect (None, _, callee, args) ->
    Fmt.pf ppf "call.ind %a(%a)" pp_operand callee pp_args args
  | Intrinsic (r, i) -> Fmt.pf ppf "%%%d = %s" r (intrinsic_name i)
  | Barrier { aligned } ->
    Fmt.pf ppf "barrier%s" (if aligned then ".aligned" else "")
  | Atomic (d, op, t, addr, ops) ->
    (match d with
    | Some r -> Fmt.pf ppf "%%%d = " r
    | None -> ());
    Fmt.pf ppf "atomic.%s %a %a, %a" (atomic_name op) pp_typ t pp_operand addr
      pp_args ops
  | Assume o -> Fmt.pf ppf "assume %a" pp_operand o
  | Trap s -> Fmt.pf ppf "trap %S" s
  | Malloc (r, sz) -> Fmt.pf ppf "%%%d = malloc %a" r pp_operand sz
  | Free o -> Fmt.pf ppf "free %a" pp_operand o
  | Debug_print (s, ops) -> Fmt.pf ppf "debug.print %S, %a" s pp_args ops

let pp_term ppf = function
  | Ret None -> Fmt.string ppf "ret"
  | Ret (Some o) -> Fmt.pf ppf "ret %a" pp_operand o
  | Br l -> Fmt.pf ppf "br %s" l
  | Cond_br (c, t, f) -> Fmt.pf ppf "br %a, %s, %s" pp_operand c t f
  | Switch (o, cases, d) ->
    Fmt.pf ppf "switch %a, default %s [%a]" pp_operand o d
      (Fmt.list ~sep:Fmt.comma (fun ppf (v, l) -> Fmt.pf ppf "%Ld->%s" v l))
      cases
  | Unreachable -> Fmt.string ppf "unreachable"

let pp_phi ppf p =
  Fmt.pf ppf "%%%d = phi %a [%a]" p.phi_reg pp_typ p.phi_typ
    (Fmt.list ~sep:Fmt.comma (fun ppf (l, o) -> Fmt.pf ppf "%s: %a" l pp_operand o))
    p.phi_incoming

let pp_block ppf b =
  Fmt.pf ppf "@[<v 2>%s:@ " b.b_label;
  List.iter (fun p -> Fmt.pf ppf "%a@ " pp_phi p) b.b_phis;
  List.iter (fun i -> Fmt.pf ppf "%a@ " pp_inst i) b.b_insts;
  Fmt.pf ppf "%a@]" pp_term b.b_term

let attr_name = function
  | Attr_inline_hint -> "inline_hint"
  | Attr_no_inline -> "no_inline"
  | Attr_aligned_barrier -> "aligned_barrier"
  | Attr_no_sync -> "no_sync"
  | Attr_no_free_state -> "no_free_state"
  | Attr_main_thread_only -> "main_thread_only"

let pp_func ppf f =
  let pp_param ppf (r, t) = Fmt.pf ppf "%%%d: %a" r pp_typ t in
  Fmt.pf ppf "@[<v>%s%sfunc %s(%a)%a%s@,"
    (if f.f_is_kernel then "kernel " else "")
    (match f.f_linkage with Internal -> "internal " | External -> "")
    f.f_name
    (Fmt.list ~sep:Fmt.comma pp_param)
    f.f_params
    (fun ppf -> function
      | None -> Fmt.string ppf ""
      | Some t -> Fmt.pf ppf " -> %a" pp_typ t)
    f.f_ret
    (match f.f_attrs with
    | [] -> ""
    | attrs -> " [" ^ String.concat "," (List.map attr_name attrs) ^ "]");
  List.iter (fun b -> Fmt.pf ppf "%a@," pp_block b) f.f_blocks;
  Fmt.pf ppf "@]"

let space_name = function
  | Global -> "global" | Shared -> "shared" | Local -> "local" | Constant -> "const"

let pp_global ppf g =
  Fmt.pf ppf "%s%sglobal @%s : %s[%d]%s"
    (match g.g_linkage with Internal -> "internal " | External -> "")
    (if g.g_const then "const " else "")
    g.g_name (space_name g.g_space) g.g_size
    (match g.g_init with
    | Zero_init -> " = zeroinit"
    | No_init -> ""
    | Words_init ws ->
      Fmt.str " = [%a]" (Fmt.list ~sep:Fmt.comma (fun ppf -> Fmt.pf ppf "%Ld")) ws)

let pp_module ppf m =
  Fmt.pf ppf "@[<v>module %s@,@," m.m_name;
  List.iter (fun g -> Fmt.pf ppf "%a@," pp_global g) m.m_globals;
  Fmt.pf ppf "@,";
  List.iter (fun f -> Fmt.pf ppf "%a@," pp_func f) m.m_funcs;
  Fmt.pf ppf "@]"

let module_to_string m = Fmt.str "%a" pp_module m
let func_to_string f = Fmt.str "%a" pp_func f
let inst_to_string i = Fmt.str "%a" pp_inst i
