(* Dominator / post-dominator tree tests, including the reconvergence
   points the SIMT engine relies on, and a QCheck property validating
   dominance against its path-based definition on random CFGs. *)

open Ozo_ir.Types
module Cfg = Ozo_ir.Cfg
module Dom = Ozo_ir.Dominance
open Util

let blk label insts term = { b_label = label; b_phis = []; b_insts = insts; b_term = term }

let func_of blocks =
  { f_name = "f"; f_params = [ (0, I1) ]; f_ret = None; f_blocks = blocks;
    f_linkage = Internal; f_attrs = []; f_is_kernel = true; f_next_reg = 1 }

let diamond =
  func_of
    [ blk "entry" [] (Cond_br (Reg 0, "a", "b"));
      blk "a" [] (Br "join");
      blk "b" [] (Br "join");
      blk "join" [] (Ret None) ]

let loop =
  func_of
    [ blk "entry" [] (Br "head");
      blk "head" [] (Cond_br (Reg 0, "body", "exit"));
      blk "body" [] (Br "head");
      blk "exit" [] (Ret None) ]

let test_diamond_dominators () =
  let cfg = Cfg.of_func diamond in
  let d = Dom.dominators cfg in
  Alcotest.(check bool) "entry dom a" true (Dom.dominates d "entry" "a");
  Alcotest.(check bool) "entry dom join" true (Dom.dominates d "entry" "join");
  Alcotest.(check bool) "a !dom join" false (Dom.dominates d "a" "join");
  Alcotest.(check bool) "reflexive" true (Dom.dominates d "a" "a");
  Alcotest.(check bool) "strict not reflexive" false (Dom.strictly_dominates d "a" "a");
  Alcotest.(check (option string)) "idom join" (Some "entry") (Dom.idom d "join")

let test_loop_dominators () =
  let cfg = Cfg.of_func loop in
  let d = Dom.dominators cfg in
  Alcotest.(check bool) "head dom body" true (Dom.dominates d "head" "body");
  Alcotest.(check bool) "head dom exit" true (Dom.dominates d "head" "exit");
  Alcotest.(check bool) "body !dom exit" false (Dom.dominates d "body" "exit")

let test_diamond_reconvergence () =
  let cfg = Cfg.of_func diamond in
  let pd = Dom.post_dominators cfg in
  Alcotest.(check (option string)) "reconv of entry" (Some "join")
    (Dom.reconvergence_point pd "entry");
  Alcotest.(check (option string)) "reconv of a" (Some "join")
    (Dom.reconvergence_point pd "a")

let test_multi_ret_reconvergence () =
  (* both sides return: no reconvergence before function exit *)
  let f =
    func_of
      [ blk "entry" [] (Cond_br (Reg 0, "a", "b"));
        blk "a" [] (Ret None);
        blk "b" [] (Ret None) ]
  in
  let cfg = Cfg.of_func f in
  let pd = Dom.post_dominators cfg in
  Alcotest.(check (option string)) "no reconv" None (Dom.reconvergence_point pd "entry")

let test_loop_reconvergence () =
  let cfg = Cfg.of_func loop in
  let pd = Dom.post_dominators cfg in
  Alcotest.(check (option string)) "head reconverges at exit" (Some "exit")
    (Dom.reconvergence_point pd "head")

(* --- random CFG property --------------------------------------------- *)

(* generate a random function of n blocks with random terminators *)
let random_cfg_gen =
  QCheck.Gen.(
    sized_size (int_range 2 12) (fun n ->
        let n = max 2 n in
        let lbl i = Printf.sprintf "b%d" i in
        let gen_term =
          int_range 0 99 >>= fun k ->
          if k < 15 then return (Ret None)
          else if k < 60 then int_range 0 (n - 1) >>= fun t -> return (Br (lbl t))
          else
            int_range 0 (n - 1) >>= fun t1 ->
            int_range 0 (n - 1) >>= fun t2 ->
            return (Cond_br (Reg 0, lbl t1, lbl t2))
        in
        let rec gen_blocks i acc =
          if i = n then return (List.rev acc)
          else
            gen_term >>= fun t ->
            (* the last block always returns so an exit exists *)
            let t = if i = n - 1 then Ret None else t in
            gen_blocks (i + 1) ({ b_label = lbl i; b_phis = []; b_insts = []; b_term = t } :: acc)
        in
        gen_blocks 0 []))

let arbitrary_cfg =
  QCheck.make random_cfg_gen ~print:(fun blocks ->
      String.concat "; "
        (List.map
           (fun b -> Fmt.str "%s -> %a" b.b_label Ozo_ir.Printer.pp_term b.b_term)
           blocks))

(* path-based dominance check: a dominates b iff b unreachable from entry
   once a is removed (for a <> b, b reachable) *)
let reachable_without blocks ~removed ~from ~target =
  let tbl = Hashtbl.create 16 in
  List.iter (fun b -> Hashtbl.replace tbl b.b_label b) blocks;
  let seen = Hashtbl.create 16 in
  let rec dfs l =
    if l <> removed && not (Hashtbl.mem seen l) then begin
      Hashtbl.replace seen l ();
      match Hashtbl.find_opt tbl l with
      | Some b -> List.iter dfs (term_succs b.b_term)
      | None -> ()
    end
  in
  dfs from;
  Hashtbl.mem seen target

let prop_dominance_matches_paths =
  QCheck.Test.make ~name:"dominance matches path definition" ~count:200 arbitrary_cfg
    (fun blocks ->
      let f = func_of blocks in
      let cfg = Cfg.of_func f in
      let d = Dom.dominators cfg in
      let labels = List.map (fun b -> b.b_label) blocks in
      let entry = (List.hd blocks).b_label in
      List.for_all
        (fun a ->
          List.for_all
            (fun b ->
              if a = b then true
              else if not (Cfg.is_reachable cfg b) then true
              else
                let dom_says = Dom.dominates d a b in
                let path_says =
                  a = entry
                  || not (reachable_without blocks ~removed:a ~from:entry ~target:b)
                in
                dom_says = path_says)
            labels)
        labels)

let prop_ipdom_postdominates =
  QCheck.Test.make ~name:"reconvergence point post-dominates" ~count:200 arbitrary_cfg
    (fun blocks ->
      let f = func_of blocks in
      let cfg = Cfg.of_func f in
      let pd = Dom.post_dominators cfg in
      (* for each reachable block with a reconvergence point r: every path
         from the block to any exit must pass through r. Equivalent: no
         exit reachable from the block once r is removed. *)
      List.for_all
        (fun b ->
          if not (Cfg.is_reachable cfg b.b_label) then true
          else
            match Dom.reconvergence_point pd b.b_label with
            | None -> true
            | Some r ->
              if r = b.b_label then true
              else
                let exits = Cfg.exits cfg in
                List.for_all
                  (fun e ->
                    (not (Cfg.is_reachable cfg e))
                    || e = r
                    || not (reachable_without blocks ~removed:r ~from:b.b_label ~target:e))
                  exits)
        blocks)

let suite =
  [ tc "diamond dominators" test_diamond_dominators;
    tc "loop dominators" test_loop_dominators;
    tc "diamond reconvergence" test_diamond_reconvergence;
    tc "multi-ret: no reconvergence" test_multi_ret_reconvergence;
    tc "loop reconvergence" test_loop_reconvergence;
    QCheck_alcotest.to_alcotest prop_dominance_matches_paths;
    QCheck_alcotest.to_alcotest prop_ipdom_postdominates ]
