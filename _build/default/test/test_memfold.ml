(* Tests for the inter-procedural conditional value propagation pass
   (paper Section IV-B): each folding rule individually, the interference
   filtering, the ablation toggles, and dead-state elimination. *)

open Ozo_ir.Types
module B = Ozo_ir.Builder
module Memfold = Ozo_opt.Memfold
module Local_opt = Ozo_opt.Local_opt
module Strip = Ozo_opt.Strip
module Device = Ozo_vgpu.Device
module Engine = Ozo_vgpu.Engine
open Util

let opts_all = Memfold.all_on
let opts_no_b2 = { opts_all with Memfold.b2 = false }
let opts_no_b3 = { opts_all with Memfold.b3 = false }
let opts_no_b4 = { opts_all with Memfold.b4 = false }
let opts_no_c = { opts_all with Memfold.c = false }

let run_mf ?(opts = opts_all) m =
  let m, _ = Memfold.run ~opts m in
  let m, _ = Local_opt.run m in
  m

let loads_in m fname = count_in_func is_load (find_func_exn m fname)

(* --- R0: constant-memory configuration globals ------------------------ *)

let test_r0_const_global () =
  let b = B.create "m" in
  ignore
    (B.add_global b ~space:Constant ~const:true ~size:8 ~init:(Words_init [ 123L ]) "cfg");
  let ps = B.begin_func b ~name:"k" ~kernel:true ~params:[ I64 ] ~ret:None () in
  B.set_block b "entry";
  (match ps with
  | [ out ] ->
    let v = B.load b I64 (Global_addr "cfg") in
    B.store b I64 v out;
    B.ret b None
  | _ -> assert false);
  ignore (B.end_func b);
  let m = run_mf (B.finish b) in
  Alcotest.(check int) "load folded" 0 (loads_in m "k");
  let dev = Device.create m in
  let out = Device.alloc dev 8 in
  (match Device.launch dev ~teams:1 ~threads:1 [ Engine.Ai (Device.ptr out) ] with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "%a" Device.pp_error e);
  Alcotest.(check int) "value" 123 (i64_array dev out 1).(0)

(* --- R1: zero-initialized, all stores zero (thread-state rule) -------- *)

let zero_rule_module ~store_value =
  let b = B.create "m" in
  ignore (B.add_global b ~space:Shared ~size:256 "states");
  let ps = B.begin_func b ~name:"k" ~kernel:true ~params:[ I64 ] ~ret:None () in
  B.set_block b "entry";
  (match ps with
  | [ out ] ->
    let tid = B.thread_id b in
    (* store at a thread-dependent (statically unknown) offset *)
    let slot = B.ptradd b (Global_addr "states") (B.mul b tid (B.i64 8)) in
    B.store b I64 (B.i64 store_value) slot;
    B.barrier b ~aligned:true;
    (* load at another unknown offset *)
    let other = B.ptradd b (Global_addr "states") (B.mul b (B.xor b tid (B.i64 1)) (B.i64 8)) in
    let v = B.load b I64 other in
    B.store b I64 v (B.ptradd b out (B.mul b tid (B.i64 8)));
    B.ret b None
  | _ -> assert false);
  ignore (B.end_func b);
  B.finish b

let test_r1_zero_rule_folds () =
  let m = run_mf (zero_rule_module ~store_value:0) in
  Alcotest.(check int) "NULL load folded" 0 (loads_in m "k");
  (* the now write-only global is stripped after DSE *)
  let m = run_mf m in
  let m, _ = Strip.run m in
  Alcotest.(check bool) "global gone" false (has_global m "states")

let test_r1_nonzero_store_blocks () =
  let m = run_mf (zero_rule_module ~store_value:7) in
  Alcotest.(check int) "load survives" 1 (loads_in m "k");
  (* and execution is still correct *)
  let dev = Device.create m in
  let out = Device.alloc dev (32 * 8) in
  (match Device.launch dev ~teams:1 ~threads:32 [ Engine.Ai (Device.ptr out) ] with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "%a" Device.pp_error e);
  Alcotest.(check int) "sees 7" 7 (i64_array dev out 1).(0)

(* --- R2: assumed memory content ---------------------------------------- *)

(* the runtime's broadcast idiom: conditional-pointer write, aligned
   barrier, assume, then a consumer load *)
let assume_module ?(cross_block = false) () =
  let b = B.create "m" in
  ignore (B.add_global b ~space:Shared ~size:8 "flag");
  ignore (B.add_global b ~space:Shared ~size:8 ~init:No_init "dummy");
  let ps = B.begin_func b ~name:"k" ~kernel:true ~params:[ I64 ] ~ret:None () in
  B.set_block b "entry";
  (match ps with
  | [ out ] ->
    let tid = B.thread_id b in
    let is0 = B.icmp b Eq tid (B.i64 0) in
    let p = B.select b (Ptr Shared) is0 (Global_addr "flag") (Global_addr "dummy") in
    B.store b I64 (B.i64 1) p;
    B.barrier b ~aligned:true;
    let lv = B.load b I64 (Global_addr "flag") in
    let c = B.icmp b Eq lv (B.i64 1) in
    B.assume b c;
    if cross_block then begin
      (* consumer load in a separate block: needs dominance (B2) *)
      B.br b "consumer";
      B.set_block b "consumer"
    end;
    let v = B.load b I64 (Global_addr "flag") in
    B.store b I64 (B.mul b v (B.i64 10)) (B.ptradd b out (B.mul b tid (B.i64 8)));
    B.ret b None
  | _ -> assert false);
  ignore (B.end_func b);
  B.finish b

(* count loads excluding the assume-feeding one (dropped later) *)
let consumer_loads m =
  (* after drop_assumes + cleanup, only unfolded consumer loads remain *)
  let m, _ = Memfold.drop_assumes m in
  let m, _ = Local_opt.run m in
  loads_in m "k"

let test_r2_assume_folds () =
  let m = run_mf (assume_module ()) in
  Alcotest.(check int) "consumer load folded" 0 (consumer_loads m);
  let dev = Device.create m in
  let out = Device.alloc dev (32 * 8) in
  (match Device.launch dev ~teams:1 ~threads:32 [ Engine.Ai (Device.ptr out) ] with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "%a" Device.pp_error e);
  Alcotest.(check int) "value" 10 (i64_array dev out 1).(0)

let test_r2_needs_b3 () =
  let m = run_mf ~opts:opts_no_b3 (assume_module ()) in
  Alcotest.(check bool) "consumer load survives without B3" true (consumer_loads m >= 1)

let test_r2_cross_block_needs_b2 () =
  (* with B2: folds across blocks; without: only same-block windows *)
  let m_with = run_mf (assume_module ~cross_block:true ()) in
  Alcotest.(check int) "folds with B2" 0 (consumer_loads m_with);
  let m_without = run_mf ~opts:opts_no_b2 (assume_module ~cross_block:true ()) in
  Alcotest.(check bool) "survives without B2" true (consumer_loads m_without >= 1)

let test_r2_interfering_store_blocks () =
  (* a later unconditional store to the same field kills the fact *)
  let b = B.create "m" in
  ignore (B.add_global b ~space:Shared ~size:8 "flag");
  ignore (B.add_global b ~space:Shared ~size:8 ~init:No_init "dummy");
  let ps = B.begin_func b ~name:"k" ~kernel:true ~params:[ I64 ] ~ret:None () in
  B.set_block b "entry";
  (match ps with
  | [ out ] ->
    let tid = B.thread_id b in
    let is0 = B.icmp b Eq tid (B.i64 0) in
    let p = B.select b (Ptr Shared) is0 (Global_addr "flag") (Global_addr "dummy") in
    B.store b I64 (B.i64 1) p;
    B.barrier b ~aligned:true;
    let lv = B.load b I64 (Global_addr "flag") in
    B.assume b (B.icmp b Eq lv (B.i64 1));
    (* interfering write between fact and consumer *)
    let p2 = B.select b (Ptr Shared) is0 (Global_addr "flag") (Global_addr "dummy") in
    B.store b I64 (B.i64 2) p2;
    B.barrier b ~aligned:true;
    let v = B.load b I64 (Global_addr "flag") in
    B.store b I64 v (B.ptradd b out (B.mul b tid (B.i64 8)));
    B.ret b None
  | _ -> assert false);
  ignore (B.end_func b);
  let m = run_mf (B.finish b) in
  Alcotest.(check bool) "fact killed by interference" true (consumer_loads m >= 1);
  let dev = Device.create m in
  let out = Device.alloc dev (32 * 8) in
  (match Device.launch dev ~teams:1 ~threads:32 [ Engine.Ai (Device.ptr out) ] with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "%a" Device.pp_error e);
  Alcotest.(check int) "sees second write" 2 (i64_array dev out 1).(0)

let test_r2_field_sensitivity () =
  (* a conditional write to a *different* field must not kill the fact *)
  let b = B.create "m" in
  ignore (B.add_global b ~space:Shared ~size:16 "icv");
  ignore (B.add_global b ~space:Shared ~size:8 ~init:No_init "dummy");
  let ps = B.begin_func b ~name:"k" ~kernel:true ~params:[ I64 ] ~ret:None () in
  B.set_block b "entry";
  (match ps with
  | [ out ] ->
    let tid = B.thread_id b in
    let is0 = B.icmp b Eq tid (B.i64 0) in
    let p = B.select b (Ptr Shared) is0 (Global_addr "icv") (Global_addr "dummy") in
    B.store b I64 (B.i64 1) p;
    B.barrier b ~aligned:true;
    let lv = B.load b I64 (Global_addr "icv") in
    B.assume b (B.icmp b Eq lv (B.i64 1));
    (* write to field at offset 8 — disjoint *)
    let f8 = B.ptradd b (Global_addr "icv") (B.i64 8) in
    let p2 = B.select b (Ptr Shared) is0 f8 (Global_addr "dummy") in
    B.store b I64 (B.i64 99) p2;
    let v = B.load b I64 (Global_addr "icv") in
    B.store b I64 (B.mul b v (B.i64 10)) (B.ptradd b out (B.mul b tid (B.i64 8)));
    B.ret b None
  | _ -> assert false);
  ignore (B.end_func b);
  let m = run_mf (B.finish b) in
  Alcotest.(check int) "disjoint field ignored" 0 (consumer_loads m)

(* --- R3: private store-to-load forwarding (IV-C) ----------------------- *)

let forward_module ~value_is_param =
  kernel_module ~params:[ I64; I64 ] (fun b ps ->
      match ps with
      | [ out; arg ] ->
        let p = B.alloca b 8 in
        let v = if value_is_param then arg else B.i64 33 in
        B.store b I64 v p;
        let l = B.load b I64 p in
        let tid = B.thread_id b in
        B.store b I64 l (B.ptradd b out (B.mul b tid (B.i64 8)))
      | _ -> assert false)

let test_r3_forwarding () =
  let m = run_mf (forward_module ~value_is_param:false) in
  Alcotest.(check int) "constant forwarded" 0 (loads_in m "k");
  let m2 = run_mf (forward_module ~value_is_param:true) in
  Alcotest.(check int) "invariant value forwarded (B4)" 0 (loads_in m2 "k")

let test_r3_toggles () =
  let m = run_mf ~opts:opts_no_c (forward_module ~value_is_param:false) in
  Alcotest.(check int) "no forwarding without IV-C" 1 (loads_in m "k");
  let m2 = run_mf ~opts:opts_no_b4 (forward_module ~value_is_param:true) in
  Alcotest.(check int) "no invariant forwarding without B4" 1 (loads_in m2 "k");
  let m3 = run_mf ~opts:opts_no_b4 (forward_module ~value_is_param:false) in
  Alcotest.(check int) "constants still forward without B4" 0 (loads_in m3 "k")

let test_r3_escape_blocks () =
  (* passing the alloca to an opaque callee blocks forwarding *)
  let b = B.create "m" in
  (match
     B.begin_func b ~name:"opaque" ~attrs:[ Attr_no_inline ] ~params:[ I64 ] ~ret:None ()
   with
  | [ p ] ->
    B.set_block b "entry";
    B.store b I64 (B.i64 99) p;
    B.ret b None
  | _ -> assert false);
  ignore (B.end_func b);
  let ps = B.begin_func b ~name:"k" ~kernel:true ~params:[ I64 ] ~ret:None () in
  B.set_block b "entry";
  (match ps with
  | [ out ] ->
    let p = B.alloca b 8 in
    B.store b I64 (B.i64 33) p;
    B.call_void b "opaque" [ p ];
    let l = B.load b I64 p in
    B.store b I64 l out;
    B.ret b None
  | _ -> assert false);
  ignore (B.end_func b);
  let m = run_mf (B.finish b) in
  Alcotest.(check int) "load survives" 1 (loads_in m "k");
  let dev = Device.create m in
  let out = Device.alloc dev 8 in
  (match Device.launch dev ~teams:1 ~threads:1 [ Engine.Ai (Device.ptr out) ] with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "%a" Device.pp_error e);
  Alcotest.(check int) "sees callee write" 99 (i64_array dev out 1).(0)

let test_r3_interfering_store () =
  (* a store between the forwarded store and the load blocks forwarding *)
  let m =
    kernel_module ~params:[ I64 ] (fun b ps ->
        match ps with
        | [ out ] ->
          let p = B.alloca b 8 in
          B.store b I64 (B.i64 1) p;
          B.store b I64 (B.i64 2) p;
          let l = B.load b I64 p in
          B.store b I64 l out
        | _ -> assert false)
  in
  let m = run_mf m in
  let dev = Device.create m in
  let out = Device.alloc dev 8 in
  (match Device.launch dev ~teams:1 ~threads:1 [ Engine.Ai (Device.ptr out) ] with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "%a" Device.pp_error e);
  Alcotest.(check int) "latest store wins" 2 (i64_array dev out 1).(0)

(* --- DSE + stripping ---------------------------------------------------- *)

let test_dse_write_only_global () =
  let b = B.create "m" in
  ignore (B.add_global b ~space:Shared ~size:64 "wo");
  let ps = B.begin_func b ~name:"k" ~kernel:true ~params:[ I64 ] ~ret:None () in
  B.set_block b "entry";
  (match ps with
  | [ out ] ->
    let tid = B.thread_id b in
    B.store b I64 tid (B.ptradd b (Global_addr "wo") (B.mul b tid (B.i64 8)));
    B.store b I64 (B.i64 1) out;
    B.ret b None
  | _ -> assert false);
  ignore (B.end_func b);
  let m = run_mf (B.finish b) in
  let m, _ = Strip.run m in
  Alcotest.(check bool) "write-only global stripped" false (has_global m "wo");
  Alcotest.(check int) "only the live store remains" 1 (count_insts is_store m)

let test_escaped_global_not_touched () =
  (* storing the global's address makes it unanalyzable: loads survive *)
  let b = B.create "m" in
  ignore (B.add_global b ~space:Shared ~size:8 "esc");
  ignore (B.add_global b ~space:Shared ~size:8 "holder");
  let ps = B.begin_func b ~name:"k" ~kernel:true ~params:[ I64 ] ~ret:None () in
  B.set_block b "entry";
  (match ps with
  | [ out ] ->
    B.store b I64 (Global_addr "esc") (Global_addr "holder");
    let v = B.load b I64 (Global_addr "esc") in
    B.store b I64 v out;
    B.ret b None
  | _ -> assert false);
  ignore (B.end_func b);
  let m = run_mf (B.finish b) in
  Alcotest.(check bool) "load survives escape" true (loads_in m "k" >= 1)

let suite =
  [ tc "R0: constant global folds" test_r0_const_global;
    tc "R1: zero rule folds unknown-offset loads" test_r1_zero_rule_folds;
    tc "R1: non-zero store blocks the rule" test_r1_nonzero_store_blocks;
    tc "R2: assume-based content folds" test_r2_assume_folds;
    tc "R2: disabled without B3" test_r2_needs_b3;
    tc "R2: cross-block needs B2" test_r2_cross_block_needs_b2;
    tc "R2: interfering store kills fact" test_r2_interfering_store_blocks;
    tc "R2: field sensitivity filters disjoint fields" test_r2_field_sensitivity;
    tc "R3: private forwarding (constant + invariant)" test_r3_forwarding;
    tc "R3: IV-C and B4 toggles" test_r3_toggles;
    tc "R3: escape blocks forwarding" test_r3_escape_blocks;
    tc "R3: interference respected" test_r3_interfering_store;
    tc "DSE: write-only global removed" test_dse_write_only_global;
    tc "escaped global untouched" test_escaped_global_not_touched ]
