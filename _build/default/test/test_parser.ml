(* IR text parser tests: hand-written fixtures and print→parse round-trips
   over every module the repository builds (both runtimes, all proxies
   under several lowerings), plus a QCheck property over random kernels. *)

open Ozo_ir.Types
module Parser = Ozo_ir.Parser
module Printer = Ozo_ir.Printer
open Util

(* [f_next_reg] is not part of the textual form (the parser recomputes a
   tight bound); normalize before comparing *)
let normalize (m : modul) =
  { m with
    m_funcs =
      List.map
        (fun f ->
          let next =
            List.fold_left
              (fun acc b ->
                let acc = List.fold_left (fun a p -> max a (p.phi_reg + 1)) acc b.b_phis in
                List.fold_left
                  (fun a i -> match inst_def i with Some r -> max a (r + 1) | None -> a)
                  acc b.b_insts)
              (List.fold_left (fun a (r, _) -> max a (r + 1)) 0 f.f_params)
              f.f_blocks
          in
          { f with f_next_reg = next })
        m.m_funcs }

let roundtrip name (m : modul) =
  let text = Printer.module_to_string m in
  match Parser.parse_module text with
  | m' ->
    let m = normalize m and m' = normalize m' in
    if not (equal_modul m m') then
      Alcotest.failf "%s: round-trip mismatch.\nFIRST:\n%s\nSECOND:\n%s" name text
        (Printer.module_to_string m')
  | exception Parser.Parse_error e ->
    Alcotest.failf "%s: parse error: %s\nTEXT:\n%s" name e text

let test_fixture () =
  let text =
    {|module fixture

internal global @state : shared[40] = zeroinit
const global @cfg : const[8] = [7]
internal global @buf : global[64]

kernel func k(%0: i64, %1: f64)
entry:
  %2 = thread.id
  %3 = icmp slt %2, 16:i64
  br %3, a, b
a:
  %4 = fadd %1, 0x1.8p+1
  store f64 %4, %0
  br join
b:
  barrier.aligned
  br join
join:
  %5 = phi i64 [a: 1:i64, b: 2:i64]
  %6 = load i64, @cfg
  %7 = add %5, %6
  assume %3
  call helper(%7)
  ret

internal func helper(%0: i64) [no_inline]
entry:
  trap "nope"
  ret
|}
  in
  match Parser.parse_module text with
  | m ->
    check_verifies "fixture" m;
    Alcotest.(check int) "globals" 3 (List.length m.m_globals);
    Alcotest.(check int) "funcs" 2 (List.length m.m_funcs);
    let k = find_func_exn m "k" in
    Alcotest.(check bool) "kernel flag" true k.f_is_kernel;
    Alcotest.(check int) "blocks" 4 (List.length k.f_blocks);
    let h = find_func_exn m "helper" in
    Alcotest.(check bool) "no_inline attr" true (List.mem Attr_no_inline h.f_attrs);
    (* and the fixture itself round-trips *)
    roundtrip "fixture" m
  | exception Parser.Parse_error e -> Alcotest.failf "fixture: %s" e

let test_parse_errors () =
  List.iter
    (fun (name, text) ->
      match Parser.parse_module text with
      | _ -> Alcotest.failf "%s: expected a parse error" name
      | exception Parser.Parse_error _ -> ())
    [ ("no module kw", "func f()\nentry:\n  ret\n");
      ("bad type", "module m\nfunc f(%0: i63)\nentry:\n  ret\n");
      ("missing terminator", "module m\nfunc f()\nentry:\n  %1 = thread.id\n");
      ("garbage", "module m\n???") ]

let test_roundtrip_runtimes () =
  roundtrip "new rt" (Ozo_runtime.Runtime.build Ozo_runtime.Config.default);
  roundtrip "new rt + assume + debug"
    (Ozo_runtime.Runtime.build Ozo_runtime.Config.(with_debug (with_assumptions default)));
  roundtrip "old rt" (Ozo_runtime.Runtime.build Ozo_runtime.Config.old_rt)

let test_roundtrip_proxies () =
  (* lowered, linked and optimized modules of every proxy under an OpenMP
     and the CUDA build *)
  List.iter
    (fun p ->
      List.iter
        (fun b ->
          let c =
            Ozo_core.Codesign.compile b (Ozo_proxies.Proxy.kernel_for p b.Ozo_core.Codesign.b_abi)
          in
          roundtrip
            (p.Ozo_proxies.Proxy.p_name ^ "/" ^ b.Ozo_core.Codesign.b_label)
            c.Ozo_core.Codesign.c_module)
        [ Ozo_core.Codesign.new_rt_nightly; Ozo_core.Codesign.cuda ])
    (Ozo_proxies.Registry.all_small ())

let prop_roundtrip_unoptimized =
  QCheck.Test.make ~name:"print/parse round-trip on random kernels" ~count:40
    (QCheck.make Test_props.gen_expr ~print:(fun _ -> "<expr>"))
    (fun e ->
      let k = Test_props.kernel_of_expr e in
      let app = Ozo_frontend.Lower.lower ~abi:(Ozo_frontend.Lower.Omp Ozo_frontend.Lower.New_abi) k in
      let m =
        Ozo_ir.Linker.link app (Ozo_runtime.Runtime.build Ozo_runtime.Config.default)
      in
      let text = Printer.module_to_string m in
      match Parser.parse_module text with
      | m' ->
        equal_modul (normalize m) (normalize m')
        || QCheck.Test.fail_reportf "round-trip mismatch"
      | exception Parser.Parse_error err -> QCheck.Test.fail_reportf "parse error: %s" err)

let suite =
  [ tc "hand-written fixture parses" test_fixture;
    tc "parse errors rejected" test_parse_errors;
    tc "round-trip: runtime modules" test_roundtrip_runtimes;
    tc "round-trip: compiled proxies" test_roundtrip_proxies;
    QCheck_alcotest.to_alcotest prop_roundtrip_unoptimized ]
