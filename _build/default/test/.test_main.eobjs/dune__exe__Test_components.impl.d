test/test_components.ml: Alcotest Array Float Fmt List Ozo_harness Ozo_ir Ozo_opt Ozo_proxies Ozo_vgpu String Util
