test/test_parser.ml: Alcotest List Ozo_core Ozo_frontend Ozo_ir Ozo_proxies Ozo_runtime QCheck QCheck_alcotest Test_props Util
