test/test_memfold.ml: Alcotest Array Ozo_ir Ozo_opt Ozo_vgpu Util
