test/test_dominance.ml: Alcotest Fmt Hashtbl List Ozo_ir Printf QCheck QCheck_alcotest String Util
