test/test_localopt.ml: Alcotest Array List Ozo_ir Ozo_opt Ozo_vgpu Util
