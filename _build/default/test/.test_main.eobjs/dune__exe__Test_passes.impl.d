test/test_passes.ml: Alcotest Array List Ozo_frontend Ozo_ir Ozo_opt Ozo_runtime Ozo_vgpu Util
