test/test_ir.ml: Alcotest Engine List Ozo_ir Ozo_vgpu Util
