test/util.ml: Alcotest Array Float Fmt List Ozo_ir Ozo_vgpu String
