test/test_frontend.ml: Alcotest Array Float List Ozo_frontend Ozo_ir Ozo_opt Ozo_runtime Ozo_vgpu Printf SSet Util
