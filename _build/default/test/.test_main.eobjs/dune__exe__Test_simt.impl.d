test/test_simt.ml: Alcotest Array Ozo_ir Ozo_vgpu Printf Util
