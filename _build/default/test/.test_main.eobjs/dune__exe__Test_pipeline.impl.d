test/test_pipeline.ml: Alcotest List Ozo_core Ozo_frontend Ozo_ir Ozo_opt Ozo_proxies Ozo_vgpu Util
