test/test_runtime.ml: Alcotest Array Fmt List Ozo_ir Ozo_runtime Ozo_vgpu Printf Util
