test/test_vgpu.ml: Alcotest Array List Ozo_ir Ozo_vgpu Printf Util
