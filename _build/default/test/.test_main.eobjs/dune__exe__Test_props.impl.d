test/test_props.ml: Array Float Fmt List Ozo_core Ozo_frontend Ozo_vgpu Printf QCheck QCheck_alcotest String Util
